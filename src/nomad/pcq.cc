#include "src/nomad/pcq.h"

#include <algorithm>

#include "src/nomad/admission.h"
#include "src/obs/event_registry.h"

namespace nomad {

bool PromotionQueues::ValidCandidate(Pfn pfn, uint32_t gen) const {
  const PageFrame f = ms_->pool().frame(pfn);
  return f.generation() == gen && f.in_use() && f.mapped() && f.tier() == Tier::kSlow &&
         !f.migrating();
}

void PromotionQueues::EnqueueCandidate(Pfn pfn) {
  PageFrame f = ms_->pool().frame(pfn);
  if (f.in_pcq() || f.in_pending() || f.migrating()) {
    return;
  }
  bool overflow = pcq_.size() >= config_.pcq_capacity;
  if constexpr (kFaultInjectionEnabled) {
    // Queue-pressure fault: the PCQ behaves as if at capacity, evicting its
    // oldest candidate to admit this one.
    if (!overflow && !pcq_.empty() && ms_->faults() != nullptr &&
        ms_->faults()->ShouldInject(FaultKind::kPcqOverflow)) {
      overflow = true;
    }
  }
  if (overflow) {
    // Overflow: forget the oldest candidate.
    const Entry old = pcq_.front();
    pcq_.pop_front();
    PageFrame of = ms_->pool().frame(old.pfn);
    if (of.generation() == old.gen) {
      of.set_in_pcq(false);
      of.set_pcq_primed(false);
    }
    ms_->counters().Add(cnt::kNomadPcqOverflow, 1);
    overflow_count_++;
    ms_->Trace(TraceEvent::kPcqOverflow, old.pfn, pcq_.size());
  }
  f.set_in_pcq(true);
  f.set_pcq_primed(false);
  const uint64_t mig_id = ++next_mig_id_;
  pcq_.push_back(Entry{pfn, f.generation(), ms_->Now(), mig_id});
  pcq_hwm_ = std::max(pcq_hwm_, pcq_.size());
  ms_->Trace(TraceEvent::kPcqEnqueue, pfn);
  ms_->TraceSpan(TraceEvent::kMigNominate, pfn, mig_id);
}

std::pair<size_t, Cycles> PromotionQueues::ScanPcq(size_t limit) {
  const KernelCosts& costs = ms_->platform().costs;
  size_t moved = 0;
  Cycles spent = 0;
  bool cleared_any_abit = false;
  bool throttled_this_pass = false;
  // Snapshot the queue length: entries primed and re-queued by this call
  // must not be re-examined until the application had time to touch them.
  const size_t examine = std::min(limit, pcq_.size());
  for (size_t i = 0; i < examine && !pcq_.empty(); i++) {
    const Entry e = pcq_.front();
    const Pfn pfn = e.pfn;
    const uint32_t gen = e.gen;
    pcq_.pop_front();
    spent += costs.lru_op;
    if (!ValidCandidate(pfn, gen)) {
      continue;  // dropped: page freed, promoted or mid-transaction
    }
    PageFrame f = ms_->pool().frame(pfn);
    Pte* pte = ms_->PteOf(*f.owner(), f.vpn());
    if (pte == nullptr || !pte->present) {
      f.set_in_pcq(false);
      f.set_pcq_primed(false);
      continue;
    }
    const bool hot = f.pcq_primed() && pte->accessed && (f.referenced() || f.active());
    if (hot) {
      if (admission_ != nullptr &&
          admission_->PcqFeedThrottled(pending_.size() + deferred_.size())) {
        // Admission backpressure: the pending backlog is at its cap. The
        // page stays in the PCQ, still primed, and moves on a later pass
        // once the backlog drains — instead of growing the queue.
        if (!throttled_this_pass) {
          throttled_this_pass = true;
          ms_->counters().Add(cnt::kAdmissionPcqThrottle, 1);
        }
        pcq_.push_back(Entry{pfn, f.generation(), e.since, e.id});
        continue;
      }
      f.set_in_pcq(false);
      f.set_pcq_primed(false);
      f.set_in_pending(true);
      ms_->hists().Record(hist::kPcqResidence, ms_->Now() - e.since);
      pending_.push_back(Entry{pfn, f.generation(), ms_->Now(), e.id});
      ms_->TraceSpan(TraceEvent::kMigHot, pfn, e.id);
      pending_hwm_ = std::max(pending_hwm_, pending_.size() + deferred_.size());
      moved++;
      continue;
    }
    if (f.pcq_primed()) {
      // Primed but untouched for a whole queue cycle: decay the candidacy
      // (two-hand-clock aging). The page stays in the PCQ - and crucially
      // stays unprotected, so it never faults again - but must now be
      // touched in two *consecutive* exam windows to qualify. Without this
      // decay, pages touched once per epoch (streaming data) eventually
      // collect two touches across arbitrary gaps and get promoted, which
      // floods the pending queue with pages that are not actually hot.
      f.set_pcq_primed(false);
      ms_->counters().Add(cnt::kNomadPcqDecay, 1);
      pcq_.push_back(Entry{pfn, f.generation(), e.since, e.id});
      continue;
    }
    if (!pte->accessed) {
      // Untouched and unprimed: just keep cycling. No PTE work needed.
      pcq_.push_back(Entry{pfn, f.generation(), e.since, e.id});
      continue;
    }
    // Touched since the last exam: clear the A-bit and prime, so the page
    // is promoted only if it is touched *again* within the next exam
    // window - i.e. in two consecutive windows, like Linux's two-handed
    // clock. Clearing A needs the stale translations gone.
    pte->accessed = false;
    spent += costs.pte_update;
    for (ActorId cpu : f.owner()->cpus()) {
      ms_->tlb(cpu).Invalidate(f.vpn());
    }
    if (!cleared_any_abit) {
      spent += costs.tlb_shootdown_base;  // one batched flush per scan round
      cleared_any_abit = true;
    }
    f.set_pcq_primed(true);
    pcq_.push_back(Entry{pfn, f.generation(), e.since, e.id});
  }
  if (examine > 0) {
    ms_->Trace(TraceEvent::kPcqDrain, examine, moved);
  }
  return {moved, spent};
}

void PromotionQueues::PromoteDueDeferred() {
  const Cycles now = ms_->Now();
  while (!deferred_.empty() && deferred_.begin()->first <= now) {
    pending_.push_back(deferred_.begin()->second);
    deferred_.erase(deferred_.begin());
  }
}

Pfn PromotionQueues::PopPending() {
  PromoteDueDeferred();
  while (!pending_.empty()) {
    const Entry e = pending_.front();
    pending_.pop_front();
    PageFrame f = ms_->pool().frame(e.pfn);
    if (f.generation() != e.gen || !f.in_pending()) {
      continue;
    }
    if (!f.in_use() || !f.mapped() || f.tier() != Tier::kSlow || f.migrating()) {
      f.set_in_pending(false);
      continue;
    }
    popped_hot_since_ = e.since;
    popped_id_ = e.id;
    return e.pfn;
  }
  return kInvalidPfn;
}

void PromotionQueues::RequeuePending(Pfn pfn, Cycles hot_since, uint64_t mig_id) {
  PageFrame f = ms_->pool().frame(pfn);
  f.set_in_pending(true);
  pending_.push_back(
      Entry{pfn, f.generation(), hot_since == kNever ? ms_->Now() : hot_since, mig_id});
  pending_hwm_ = std::max(pending_hwm_, pending_.size() + deferred_.size());
}

void PromotionQueues::DeferPending(Pfn pfn, Cycles ready, Cycles hot_since, uint64_t mig_id) {
  PageFrame f = ms_->pool().frame(pfn);
  f.set_in_pending(true);
  deferred_.emplace(
      ready, Entry{pfn, f.generation(), hot_since == kNever ? ms_->Now() : hot_since, mig_id});
  pending_hwm_ = std::max(pending_hwm_, pending_.size() + deferred_.size());
}

}  // namespace nomad
