#include "src/nomad/shadow.h"

#include "src/check/check.h"
#include "src/obs/event_registry.h"

namespace nomad {

void ShadowManager::AddShadow(Pfn master, Pfn shadow, uint64_t mig_id) {
  PageFrame m = ms_->pool().frame(master);
  PageFrame s = ms_->pool().frame(shadow);
  NOMAD_CHECK(!m.shadowed(), "master already shadowed, master=", master, " vpn=", m.vpn(),
              " new_shadow=", shadow);
  NOMAD_CHECK(s.in_use(), "shadow frame not in use, master=", master, " shadow=", shadow);
  m.set_shadowed(true);
  s.set_is_shadow(true);
  index_.Insert(master, shadow);
  if (ms_->span_tracing() && mig_id != 0) {
    mig_ids_.Insert(master, mig_id);
  }
  reclaim_fifo_.emplace_back(master, m.generation());
}

Pfn ShadowManager::ShadowOf(Pfn master) const {
  const Pfn* s = index_.Find(master);
  return s == nullptr ? kInvalidPfn : *s;
}

Pfn ShadowManager::DetachShadow(Pfn master) {
  const Pfn* found = index_.Find(master);
  if (found == nullptr) {
    return kInvalidPfn;
  }
  const Pfn shadow = *found;
  index_.Erase(master);
  if (ms_->span_tracing()) {
    // Close the owning migration's span: its retained copy is gone.
    const uint64_t* mig_id = mig_ids_.Find(master);
    if (mig_id != nullptr) {
      ms_->TraceSpan(TraceEvent::kMigShadowFree, master, *mig_id);
      mig_ids_.Erase(master);
    }
  }
  PageFrame m = ms_->pool().frame(master);
  PageFrame s = ms_->pool().frame(shadow);
  m.set_shadowed(false);
  s.set_is_shadow(false);
  // No longer a shadow: if the caller keeps the frame alive (remap-only
  // demotion) it is scannable again. Redundant when the caller frees it.
  ms_->pool().NoteScanCandidate(shadow);
  return shadow;
}

bool ShadowManager::DiscardShadow(Pfn master) {
  const Pfn shadow = DetachShadow(master);
  if (shadow == kInvalidPfn) {
    return false;
  }
  ms_->provenance().OnShadowFree(ms_->pool().frame(master).vpn(), ms_->Now());
  ms_->pool().Free(shadow);
  ms_->counters().Add(cnt::kNomadShadowDiscard, 1);
  return true;
}

uint64_t ShadowManager::ReclaimShadows(uint64_t target, Cycles* cost) {
  const KernelCosts& costs = ms_->platform().costs;
  const Cycles cost_at_entry = *cost;
  uint64_t freed = 0;
  // Newest-first: a fresh shadow belongs to a just-promoted (hot) master
  // that will stay in fast memory for a long time, so its shadow is the
  // least likely to enable a remap-demotion soon. Old shadows, whose
  // masters are nearing the inactive tail, are the valuable ones.
  while (freed < target && !reclaim_fifo_.empty()) {
    const auto [master, gen] = reclaim_fifo_.back();
    reclaim_fifo_.pop_back();
    *cost += costs.lru_op;
    PageFrame m = ms_->pool().frame(master);
    if (m.generation() != gen || !m.shadowed()) {
      continue;  // master was freed or the shadow already discarded
    }
    if (DiscardShadow(master)) {
      freed++;
      *cost += costs.pte_update;
      ms_->counters().Add(cnt::kNomadShadowReclaimed, 1);
    }
  }
  if (freed > 0) {
    ms_->Trace(TraceEvent::kShadowReclaim, freed, *cost);
  }
  // Nests under kswapd_reclaim on the slow node's pre-reclaim path and
  // sits at the root when the alloc-failure hook pulls it in directly.
  ms_->prof().ChargeLeaf(ProfNode::kShadowReclaim, *cost - cost_at_entry);
  return freed;
}

Pfn ShadowManager::OldestRemappableMaster(uint64_t limit,
                                          const std::function<bool(Pfn)>& demotable) {
  // Prune stale entries off the front so repeated calls stay cheap.
  while (!reclaim_fifo_.empty()) {
    const auto [master, gen] = reclaim_fifo_.front();
    const PageFrame m = ms_->pool().frame(master);
    if (m.generation() == gen && m.shadowed()) {
      break;
    }
    reclaim_fifo_.pop_front();
  }
  uint64_t probed = 0;
  for (const auto& [master, gen] : reclaim_fifo_) {
    if (probed++ >= limit) {
      break;
    }
    const PageFrame m = ms_->pool().frame(master);
    if (m.generation() != gen || !m.shadowed()) {
      continue;
    }
    if (demotable(master)) {
      return master;
    }
  }
  return kInvalidPfn;
}

}  // namespace nomad
