// Page shadowing (sec. 3.2): the non-exclusive half of NOMAD.
//
// When a transactional promotion commits, the original slow-tier frame is
// kept as a *shadow copy* of the new fast-tier master. The manager owns:
//  - the XArray index master-PFN -> shadow-PFN,
//  - discard on divergence: a write to the master (caught by the shadow
//    page fault, since masters are mapped read-only) frees the shadow,
//  - reclamation: a FIFO of shadows freed under memory pressure, wired
//    into kswapd's pre-reclaim hook and the allocation-failure path
//    ("targeting 10 times the number of requested pages").
#ifndef SRC_NOMAD_SHADOW_H_
#define SRC_NOMAD_SHADOW_H_

#include <deque>
#include <functional>
#include <utility>

#include "src/base/annotations.h"
#include "src/mm/memory_system.h"
#include "src/nomad/radix_tree.h"

namespace nomad {

class NOMAD_SHARD_CONFINED ShadowManager {
 public:
  explicit ShadowManager(MemorySystem* ms) : ms_(ms) {}

  // Records `shadow` (an unmapped slow-tier frame) as the shadow of
  // `master` (the mapped fast-tier frame). Called at TPM commit. `mig_id`
  // links the committing migration's span so the eventual shadow free
  // (discard, reclaim or remap-demotion detach) closes the lifecycle.
  void AddShadow(Pfn master, Pfn shadow, uint64_t mig_id = 0);

  // PFN of master's shadow, or kInvalidPfn.
  Pfn ShadowOf(Pfn master) const;

  // Frees master's shadow if one exists (master was dirtied or demoted by
  // copy). Returns true when a shadow was discarded.
  bool DiscardShadow(Pfn master);

  // Detaches the shadow from `master` *without* freeing it - used by
  // remap-only demotion, where the shadow becomes the mapped page again.
  Pfn DetachShadow(Pfn master);

  // Frees up to `target` shadow pages, newest first (see the .cc for why);
  // adds the reclaim cost to *cost. Returns pages actually freed.
  uint64_t ReclaimShadows(uint64_t target, Cycles* cost);

  // Master PFN of the oldest live shadow that satisfies `demotable`,
  // probing up to `limit` FIFO entries. Lets kswapd pair demotion demand
  // with remappable pages: demoting such a master is a PTE rewrite, not a
  // copy. Returns kInvalidPfn when none qualifies.
  Pfn OldestRemappableMaster(uint64_t limit, const std::function<bool(Pfn)>& demotable);

  uint64_t count() const { return index_.size(); }
  uint64_t bytes() const { return index_.size() * kPageSize; }

 private:
  MemorySystem* ms_;
  RadixTree<Pfn> index_;
  // Migration id of the transaction that installed master's shadow; only
  // populated while span tracing is on (see MemorySystem::span_tracing).
  RadixTree<uint64_t> mig_ids_;
  // (master pfn, master generation): stale entries are skipped on pop.
  std::deque<std::pair<Pfn, uint32_t>> reclaim_fifo_;
};

}  // namespace nomad

#endif  // SRC_NOMAD_SHADOW_H_
