// XArray-equivalent radix tree.
//
// NOMAD indexes shadow pages with an XArray, "a radix-tree like,
// cache-efficient data structure that acts as a key-value store, mapping
// from the physical address of a fast tier page to the physical address of
// its shadow copy" (sec. 3.2). This is that structure: a radix tree over
// 64-bit keys with 64-way (6-bit) fanout and dynamic height, growing and
// shrinking with the key range in use.
#ifndef SRC_NOMAD_RADIX_TREE_H_
#define SRC_NOMAD_RADIX_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace nomad {

template <typename T>
class RadixTree {
 public:
  static constexpr int kBitsPerLevel = 6;
  static constexpr uint64_t kFanout = uint64_t{1} << kBitsPerLevel;
  static constexpr uint64_t kSlotMask = kFanout - 1;

  RadixTree() = default;
  RadixTree(const RadixTree&) = delete;
  RadixTree& operator=(const RadixTree&) = delete;
  RadixTree(RadixTree&&) = default;
  RadixTree& operator=(RadixTree&&) = default;

  // Inserts or overwrites. Returns true when the key was new.
  bool Insert(uint64_t key, T value) {
    GrowToFit(key);
    Node* node = root_.get();
    for (int level = height_; level > 0; level--) {
      const uint64_t slot = SlotAt(key, level);
      if (!node->children[slot]) {
        node->children[slot] = std::make_unique<Node>();
        node->population++;
      }
      node = node->children[slot].get();
    }
    const uint64_t slot = SlotAt(key, 0);
    const bool fresh = !node->present[slot];
    if (fresh) {
      node->present[slot] = true;
      node->population++;
      size_++;
    }
    node->values[slot] = std::move(value);
    return fresh;
  }

  // Returns a pointer to the stored value, or nullptr.
  T* Find(uint64_t key) {
    if (!root_ || key > MaxKey()) {
      return nullptr;
    }
    Node* node = root_.get();
    for (int level = height_; level > 0; level--) {
      node = node->children[SlotAt(key, level)].get();
      if (node == nullptr) {
        return nullptr;
      }
    }
    const uint64_t slot = SlotAt(key, 0);
    return node->present[slot] ? &node->values[slot] : nullptr;
  }

  const T* Find(uint64_t key) const { return const_cast<RadixTree*>(this)->Find(key); }

  // Removes a key; prunes now-empty interior nodes. Returns true if found.
  bool Erase(uint64_t key) {
    if (!root_ || key > MaxKey()) {
      return false;
    }
    const bool erased = EraseRecursive(root_.get(), key, height_);
    if (erased) {
      size_--;
      if (root_->population == 0) {
        root_.reset();
        height_ = 0;
      }
    }
    return erased;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

  // Visits every (key, value) pair in ascending key order.
  void ForEach(const std::function<void(uint64_t, const T&)>& fn) const {
    if (root_) {
      ForEachRecursive(root_.get(), 0, height_, fn);
    }
  }

 private:
  struct Node {
    std::unique_ptr<Node> children[kFanout];
    T values[kFanout] = {};
    bool present[kFanout] = {};
    uint32_t population = 0;  // child nodes (interior) or present slots (leaf)
  };

  static uint64_t SlotAt(uint64_t key, int level) {
    return (key >> (level * kBitsPerLevel)) & kSlotMask;
  }

  uint64_t MaxKey() const {
    const int bits = (height_ + 1) * kBitsPerLevel;
    return bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  }

  void GrowToFit(uint64_t key) {
    if (!root_) {
      root_ = std::make_unique<Node>();
      height_ = 0;
    }
    while (key > MaxKey()) {
      if (root_->population == 0) {
        // An empty node is level-agnostic: just deepen in place instead of
        // wrapping (wrapping would create a phantom empty leaf that breaks
        // population-based pruning).
        height_++;
        continue;
      }
      auto new_root = std::make_unique<Node>();
      new_root->children[0] = std::move(root_);
      new_root->population = 1;
      root_ = std::move(new_root);
      height_++;
    }
  }

  bool EraseRecursive(Node* node, uint64_t key, int level) {
    const uint64_t slot = SlotAt(key, level);
    if (level == 0) {
      if (!node->present[slot]) {
        return false;
      }
      node->present[slot] = false;
      node->values[slot] = T{};
      node->population--;
      return true;
    }
    Node* child = node->children[slot].get();
    if (child == nullptr || !EraseRecursive(child, key, level - 1)) {
      return false;
    }
    if (child->population == 0) {
      node->children[slot].reset();
      node->population--;
    }
    return true;
  }

  void ForEachRecursive(const Node* node, uint64_t prefix, int level,
                        const std::function<void(uint64_t, const T&)>& fn) const {
    if (level == 0) {
      for (uint64_t s = 0; s < kFanout; s++) {
        if (node->present[s]) {
          fn((prefix << kBitsPerLevel) | s, node->values[s]);
        }
      }
      return;
    }
    for (uint64_t s = 0; s < kFanout; s++) {
      if (node->children[s]) {
        ForEachRecursive(node->children[s].get(), (prefix << kBitsPerLevel) | s, level - 1, fn);
      }
    }
  }

  std::unique_ptr<Node> root_;
  int height_ = 0;  // levels below the root
  size_t size_ = 0;
};

}  // namespace nomad

#endif  // SRC_NOMAD_RADIX_TREE_H_
