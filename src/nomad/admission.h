// Migration admission control: the overload-resilience control plane.
//
// Under pressure (Fig. 13/14 regimes) NOMAD's migration machinery can make
// things worse: every admitted promotion costs two shootdowns and a page
// copy of migration bandwidth, abort storms burn copies without retiring
// them, and the pending queue grows without bound while kpromote falls
// behind. The AdmissionController turns that unbounded behavior into
// bounded backpressure, in the style of TierBPF's migration admission
// control (PAPERS.md): every would-be migration asks for a verdict first.
//
//  - kAccept: a token-bucket bandwidth budget (integer cycles, refilled by
//    virtual time) has capacity; the migration proceeds and consumes it.
//  - kDefer: the budget is exhausted. The page is parked in the PCQ's
//    deferred queue until a token accrues — backpressure, not growth.
//  - kReject: the pending backlog is over its cap; the page loses its
//    candidacy entirely and must be re-nominated once load eases.
//  - kDowngradeSync: the per-page abort-storm detector (fed by the 8-bit
//    TPM abort count in the frame flags word) says this page keeps aborting
//    transactional migration; migrate it synchronously instead, and
//    re-admit it to TPM after a decay interval.
//
// Promotion and demotion draw from separate per-source credit buckets so a
// demotion burst cannot starve promotions of budget (and vice versa);
// watermark-urgent demotions bypass admission entirely — reclaim under
// pressure must never deadlock behind a throttle.
//
// Every verdict is counted (admission.* counters), traced
// (kAdmissionVerdict) and recorded per page in the provenance ledger. The
// controller is pure shard-local state driven by the shard's own virtual
// clock: sharded runs stay byte-identical across worker-thread counts.
#ifndef SRC_NOMAD_ADMISSION_H_
#define SRC_NOMAD_ADMISSION_H_

#include <cstdint>
#include <unordered_map>

#include "src/base/annotations.h"
#include "src/mm/memory_system.h"

namespace nomad {

// Verdict lattice, ordered by how much work the page is allowed to cause.
// Values are stable: they appear in kAdmissionVerdict trace records.
enum class AdmissionVerdict : uint8_t {
  kAccept = 0,         // migrate now, transactionally
  kDowngradeSync = 1,  // migrate now, but synchronously (abort storm)
  kDefer = 2,          // park until bandwidth budget accrues
  kReject = 3,         // drop candidacy; re-nominate later
};

// Stable lower_snake_case verdict name for reports.
const char* AdmissionVerdictName(AdmissionVerdict v);

// The requesting source, the second dimension of the verdict lattice.
// Values appear in kAdmissionVerdict trace records (value >> 8).
enum class AdmissionSource : uint8_t {
  kPromotion = 0,
  kDemotion = 1,
};

class NOMAD_SHARD_CONFINED AdmissionController {
 public:
  struct Config {
    // Promotion token bucket: sustained rate of one page per
    // promote_cycles_per_page virtual cycles, bursting up to
    // promote_burst_pages. A 4 KB copy at ~20 GB/s of spare bandwidth is
    // ~2000 cycles; the default budgets a few times that per page to also
    // cover the two shootdowns.
    Cycles promote_cycles_per_page = 20000;
    uint64_t promote_burst_pages = 16;
    // Demotion credits (non-urgent, watermark-healthy demotions only).
    Cycles demote_cycles_per_page = 8000;
    uint64_t demote_burst_pages = 32;
    // Backlog cap: pending + deferred promotions above this are rejected
    // outright instead of queued — the bound on pending-queue growth.
    uint64_t max_pending_backlog = 192;
    // Abort-storm detector: a page whose frame TPM abort count reaches the
    // threshold is downgraded to sync migration; after downgrade_decay
    // cycles its abort count resets and TPM admission resumes.
    uint32_t downgrade_abort_threshold = 3;
    Cycles downgrade_decay = 1500000;
  };

  struct Stats {
    uint64_t accepts = 0;
    uint64_t defers = 0;
    uint64_t rejects = 0;
    uint64_t downgrades = 0;   // abort-storm sync downgrades
    uint64_t readmits = 0;     // downgraded pages re-admitted on decay
    uint64_t demote_accepts = 0;
    uint64_t demote_defers = 0;
  };

  AdmissionController(MemorySystem* ms, const Config& config)
      : ms_(ms), config_(config) {}

  // Verdict for promoting (pfn, vpn) given the current promotion backlog
  // (pending + deferred entries). On kDefer, *retry_at is set to the
  // virtual time at which a token will have accrued.
  AdmissionVerdict AdmitPromotion(Pfn pfn, Vpn vpn, uint64_t backlog, Cycles* retry_at);

  // Non-urgent demotion credit check. Urgent (below-low-watermark) reclaim
  // must not consult admission at all — see NomadPolicy::DemotePage.
  bool AdmitDemotion();

  // True when ScanPcq should stop feeding the pending queue: the backlog
  // has reached its cap. Counted once per throttled scan pass by the
  // caller, not here.
  bool PcqFeedThrottled(uint64_t backlog) const {
    return backlog >= config_.max_pending_backlog;
  }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  // Pages currently downgraded to sync migration (abort-storm detector).
  size_t downgraded_pages() const { return downgraded_.size(); }

 private:
  // Integer token bucket over virtual time: `available` cycles of budget,
  // capped at capacity, spent cycles_per_page at a time.
  struct Bucket {
    Cycles available = 0;
    Cycles last_refill = 0;
    bool primed = false;  // first use fills the bucket to capacity
  };

  void Refill(Bucket& b, Cycles capacity);
  void RecordVerdict(AdmissionVerdict v, AdmissionSource src, Vpn vpn);

  MemorySystem* ms_;
  Config config_;
  Stats stats_;
  Bucket promote_bucket_;
  Bucket demote_bucket_;
  // pfn -> decay deadline for pages the abort-storm detector downgraded.
  // Only thrashing pages ever enter; erased on decay, so it stays small.
  std::unordered_map<Pfn, Cycles> downgraded_;
};

}  // namespace nomad

#endif  // SRC_NOMAD_ADMISSION_H_
