// kpromote: the background thread that runs transactional page migrations.
//
// Implements the TPM protocol of Fig. 3 as a two-phase state machine over
// engine steps:
//
//  Begin (one step, duration = the page copy); the page stays mapped and
//  accessible throughout:
//    1. clear the PTE dirty bit
//    2. TLB shootdown #1
//    3. copy slow -> fast
//
//  Commit (next step, a few microseconds):
//    4. atomic get_and_clear of the PTE  (page briefly inaccessible)
//    5. TLB shootdown #2
//    6. dirty check
//    7. clean  -> remap to the fast copy; old frame becomes the shadow
//    8. dirty  -> abort: restore the PTE, free the copy, retry later
//
// Because application actors interleave with the copy step, a store during
// the copy sets the PTE dirty bit and aborts the transaction - exactly the
// paper's abort condition. Multi-mapped pages fall back to synchronous
// migration (sec. 3.3).
#ifndef SRC_NOMAD_KPROMOTE_H_
#define SRC_NOMAD_KPROMOTE_H_

#include <functional>
#include <optional>

#include "src/base/annotations.h"
#include "src/mm/memory_system.h"
#include "src/nomad/pcq.h"
#include "src/nomad/shadow.h"
#include "src/nomad/tpm_protocol.h"

namespace nomad {

class AdmissionController;

class NOMAD_SHARD_CONFINED KpromoteActor : public Actor {
 public:
  struct Config {
    Cycles idle_poll = 25000;     // re-check period when the queues are empty
    size_t pcq_scan_batch = 64;   // PCQ entries examined per pass
    // Ablation switches (benches only; both true = full NOMAD):
    bool transactional = true;    // false: kpromote migrates synchronously
    bool shadowing = true;        // false: exclusive tiering (free the old frame)

    // --- graceful degradation ---
    // A page whose transaction aborts is retried with exponential backoff
    // (base << (aborts-1)) and dropped after max_txn_retries consecutive
    // aborts; the candidacy machinery may re-nominate it later.
    uint32_t max_txn_retries = 4;
    Cycles abort_backoff_base = 50000;
    // Abort storm: >= storm_abort_threshold aborts inside one storm_window
    // switches kpromote to plain synchronous migration (no copy-while-
    // mapped race, so no aborts) for sync_degrade_duration cycles.
    uint64_t storm_abort_threshold = 8;
    Cycles storm_window = 500000;
    Cycles sync_degrade_duration = 2000000;
  };

  struct Stats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t sync_fallbacks = 0;  // multi-mapped pages
    uint64_t nomem_waits = 0;
    // --- graceful degradation ---
    uint64_t backoffs = 0;             // aborted pages parked for retry
    uint64_t giveups = 0;              // pages dropped after max_txn_retries
    uint64_t sync_degrades = 0;        // times the abort storm tripped
    uint64_t degraded_migrations = 0;  // migrations done in degraded mode
  };

  KpromoteActor(MemorySystem* ms, PromotionQueues* queues, ShadowManager* shadows)
      : KpromoteActor(ms, queues, shadows, Config{}) {}
  KpromoteActor(MemorySystem* ms, PromotionQueues* queues, ShadowManager* shadows,
                const Config& config)
      : ms_(ms), queues_(queues), shadows_(shadows), config_(config) {}

  void set_actor_id(ActorId id) { actor_id_ = id; }
  ActorId actor_id() const { return actor_id_; }
  void set_kswapd_fast_id(ActorId id) { kswapd_fast_id_ = id; }
  // Optional promotion gate (thrash governor): when it returns false, no
  // new transactions start; an in-flight one still commits or aborts.
  void set_enabled_fn(std::function<bool()> fn) { enabled_ = std::move(fn); }
  // Optional migration control plane: every popped pending page asks for an
  // admission verdict before any bandwidth is committed (not owned).
  void set_admission(AdmissionController* a) { admission_ = a; }

  Cycles Step(Engine& engine) override;
  std::string name() const override { return "kpromote"; }

  const Stats& stats() const { return stats_; }
  // True while the abort storm has kpromote migrating synchronously.
  bool degraded() const { return degraded_until_ != 0; }

 private:
  struct Txn {
    AddressSpace* as = nullptr;
    Vpn vpn = kInvalidVpn;
    Pfn old_pfn = kInvalidPfn;
    uint32_t old_gen = 0;
    Pfn new_pfn = kInvalidPfn;
    bool was_writable = false;
    // Observability timestamps: transaction start (matches the kTpmBegin
    // trace record) and when the page entered the pending queue, i.e. was
    // first deemed hot. Feed hist::kMigrationLatency / kHotToPromoted.
    Cycles begin_time = 0;
    Cycles pending_since = 0;
    // Migration transaction id (PromotionQueues::popped_id()); stamps the
    // mig_* span records so trace_query --span can stitch the lifecycle.
    uint64_t id = 0;
  };

  // Binds tpm::Hw to the simulated MemorySystem: each protocol step
  // mutates the real PTE/frame state and accumulates its kernel cost.
  class ProtocolHw;

  Cycles BeginNext(Engine& engine);
  Cycles Commit(Engine& engine);
  void AbortCleanup(bool requeue);
  void NoteAbortForStorm();

  MemorySystem* ms_;
  PromotionQueues* queues_;
  ShadowManager* shadows_;
  Config config_;
  ActorId actor_id_ = 0;
  ActorId kswapd_fast_id_ = ~ActorId{0};
  std::optional<Txn> txn_;
  // The protocol machine for the in-flight transaction; Begin leaves it
  // parked at kFinishCopy, Commit drives it to kDone. Lives and dies with
  // txn_.
  std::optional<tpm::Transaction> machine_;
  Stats stats_;
  Cycles last_scan_ = 0;
  std::function<bool()> enabled_;
  AdmissionController* admission_ = nullptr;

  // Abort-storm tracking: aborts land in a coarse sliding window; tripping
  // the threshold sets degraded_until_ (0 = not degraded).
  Cycles storm_window_start_ = 0;
  uint64_t storm_aborts_ = 0;
  Cycles degraded_until_ = 0;
};

}  // namespace nomad

#endif  // SRC_NOMAD_KPROMOTE_H_
