// The complete NOMAD tiering policy (sec. 3).
//
// Wires together:
//  - hint-fault tracking (shared with TPP) feeding the PCQ: one minor
//    fault per migrated page,
//  - kpromote running transactional page migrations,
//  - page shadowing with the shadow page fault on master writes,
//  - shadow-aware demotion: a clean, shadowed page demotes by *remapping*
//    its PTE to the shadow copy - no page copy at all,
//  - shadow reclamation under memory pressure (kswapd priority + the
//    allocation-failure path freeing 10x the requested pages).
#ifndef SRC_NOMAD_NOMAD_POLICY_H_
#define SRC_NOMAD_NOMAD_POLICY_H_

#include <memory>

#include "src/mm/kswapd.h"
#include "src/nomad/admission.h"
#include "src/nomad/governor.h"
#include "src/nomad/kpromote.h"
#include "src/nomad/pcq.h"
#include "src/nomad/shadow.h"
#include "src/policy/policy.h"
#include "src/trace/hint_fault_scanner.h"

namespace nomad {

class NomadPolicy : public TieringPolicy {
 public:
  struct Config {
    HintFaultScanner::Config scanner;
    PromotionQueues::Config pcq;
    KpromoteActor::Config kpromote;
    Kswapd::Config kswapd_fast;
    Kswapd::Config kswapd_slow;
    uint64_t alloc_fail_reclaim_factor = 10;  // shadows freed per failed alloc
    // Graceful degradation of the allocation-failure path: each fruitless
    // reclaim attempt doubles the next target (up to the cap); after
    // max_attempts consecutive misses the hook short-circuits until the
    // shadow index repopulates, so an exhausted index cannot add a reclaim
    // walk to every failing allocation.
    uint64_t alloc_fail_reclaim_cap = 640;
    uint32_t alloc_fail_max_attempts = 5;
    // Sec. 5 extension: detect balanced promotion/demotion churn and stop
    // promoting until memory pressure eases. Off by default: the paper's
    // evaluated system does not include it.
    bool enable_governor = false;
    ThrashGovernor::Config governor;
    // Migration control plane (src/nomad/admission.h): token-bucket
    // bandwidth budget, backlog caps and the per-page abort-storm
    // downgrade. Off by default: the paper's evaluated system has no
    // admission control, and the fixed-seed goldens are captured without
    // it.
    bool enable_admission = false;
    AdmissionController::Config admission;
  };

  NomadPolicy() : NomadPolicy(Config{}) {}
  explicit NomadPolicy(const Config& config) : config_(config) {}

  std::string name() const override { return "nomad"; }
  void Install(MemorySystem& ms, Engine& engine) override;

  const KpromoteActor::Stats& tpm_stats() const { return kpromote_->stats(); }
  const ShadowManager& shadows() const { return *shadows_; }
  ShadowManager& shadows() { return *shadows_; }
  const ThrashGovernor* governor() const { return governor_.get(); }
  bool promotion_gate_open() const { return gate_.open; }
  const PromotionQueues& queues() const { return *queues_; }
  const KpromoteActor& kpromote() const { return *kpromote_; }
  // Migration control plane; nullptr unless config.enable_admission.
  const AdmissionController* admission() const { return admission_.get(); }
  // Consecutive fruitless alloc-failure reclaim attempts (for tests).
  uint32_t alloc_fail_streak() const { return alloc_fail_streak_; }

 private:
  Cycles OnHintFault(ActorId cpu, AddressSpace& as, Vpn vpn);
  Cycles OnWriteProtectFault(ActorId cpu, AddressSpace& as, Vpn vpn);
  MigrateResult DemotePage(Pfn pfn);

  Config config_;
  MemorySystem* ms_ = nullptr;
  std::unique_ptr<ShadowManager> shadows_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<PromotionQueues> queues_;
  std::unique_ptr<KpromoteActor> kpromote_;
  std::unique_ptr<Kswapd> kswapd_fast_;
  std::unique_ptr<Kswapd> kswapd_slow_;
  std::unique_ptr<HintFaultScanner> scanner_;
  std::unique_ptr<ThrashGovernor> governor_;
  PromotionGate gate_;
  uint32_t alloc_fail_streak_ = 0;
};

}  // namespace nomad

#endif  // SRC_NOMAD_NOMAD_POLICY_H_
