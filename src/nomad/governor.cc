#include "src/nomad/governor.h"

#include <cstdlib>

#include "src/obs/event_registry.h"

namespace nomad {

uint64_t ThrashGovernor::PromoTotal() const {
  const CounterSet& c = ms_->counters();
  return c.Get(cnt::kNomadTpmCommit) + c.Get(cnt::kMigrateSyncPromote);
}

uint64_t ThrashGovernor::DemoTotal() const {
  // Only demotions of *recently promoted* pages signal thrashing; evicting
  // cold pages to make room for hot ones is exactly what warm-up looks
  // like, and must not trip the governor. NOMAD's shadow machinery marks
  // recently promoted pages, so the distinction is free.
  return ms_->counters().Get(cnt::kNomadDemoteRecent);
}

Cycles ThrashGovernor::Step(Engine& engine) {
  const uint64_t promo = PromoTotal();
  const uint64_t demo = DemoTotal();
  const uint64_t promo_rate = promo - last_promo_;
  const uint64_t demo_rate = demo - last_demo_;
  last_promo_ = promo;
  last_demo_ = demo;

  if (!gate_->open) {
    if (--closed_periods_left_ <= 0) {
      // Probation: re-open and watch whether thrashing resumes.
      gate_->open = true;
      probation_left_ = config_.probation_periods;
      ms_->counters().Add(cnt::kGovernorReopen, 1);
    }
  } else {
    const bool busy = promo_rate >= config_.min_promotions;
    const double diff = promo_rate == 0
                            ? 1.0
                            : std::abs(static_cast<double>(promo_rate) -
                                       static_cast<double>(demo_rate)) /
                                  static_cast<double>(promo_rate);
    const bool thrashing = busy && diff <= config_.balance_tolerance;
    if (thrashing) {
      // Frequent and (near-)equal promotions and demotions: every page we
      // bring in pushes another one out. Stop promoting; serve in place.
      gate_->open = false;
      if (probation_left_ > 0) {
        // Relapsed right after probation: back off harder.
        backoff_ = std::min(backoff_ * 2, config_.max_backoff);
      } else {
        backoff_ = 1;
      }
      closed_periods_left_ = backoff_;
      probation_left_ = 0;
      throttle_events_++;
      ms_->counters().Add(cnt::kGovernorThrottle, 1);
    } else if (probation_left_ > 0) {
      if (--probation_left_ == 0) {
        backoff_ = 1;  // survived probation: thrashing genuinely ended
      }
    }
  }

  engine.SleepUntil(engine.now() + config_.period);
  const Cycles spent = ms_->platform().costs.daemon_wakeup / 2;
  ms_->prof().ChargeLeaf(ProfNode::kGovernor, spent);
  return spent;
}

}  // namespace nomad
