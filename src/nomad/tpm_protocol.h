// The TPM protocol state machine, extracted behind a hardware seam.
//
// This is the transition code of Fig. 3 — copy while mapped, recheck the
// dirty bit, two TLB shootdowns, commit-or-abort — expressed over the
// minimal hardware/OS surface (tpm::Hw) it actually needs. Two drivers run
// the *same* machine:
//
//   - KpromoteActor (kpromote.cc) binds Hw to the simulated MemorySystem
//     and charges kernel costs per step;
//   - tools/tpm_modelcheck binds Hw to an abstract page model and
//     exhaustively interleaves application accesses between steps, proving
//     (up to a bound) that no schedule loses an update, that a mid-copy
//     store always aborts, and that a shadow is only ever retained clean.
//
// Keeping the decision logic (when to abort, when to retain the shadow)
// here and nowhere else is what makes the model checker's verdict apply to
// the code that actually runs.
//
// The synchronous unmap-copy-remap machine of migrate.cc (the Linux path
// TPM replaces, still used for multi-mapped pages and degraded mode) lives
// here too, behind the narrower tpm::SyncHw seam.
#ifndef SRC_NOMAD_TPM_PROTOCOL_H_
#define SRC_NOMAD_TPM_PROTOCOL_H_

#include <cstdint>

namespace nomad {
namespace tpm {

// The hardware/OS operations the transactional protocol is built from.
// Implementations accumulate their own costs/state; the machine only
// sequences them and takes the abort decision.
class Hw {
 public:
  virtual ~Hw() = default;

  // Step 1: clear the PTE dirty bit. The page stays mapped and writable;
  // any store from here on must re-set the bit (after the shootdown below
  // forces a re-walk) and thereby invalidate the transaction.
  virtual void ClearDirty() = 0;

  // Step 2: TLB shootdown #1. Flushes cached translations that still carry
  // a pre-clear dirty state; without it a remote CPU could keep writing
  // through its stale entry without ever re-setting the PTE dirty bit.
  virtual void ShootdownAfterClear() = 0;

  // Step 3: start copying the page to the destination frame while it
  // remains mapped and accessible. Stores may race the copy; the dirty bit
  // records that they happened.
  virtual void StartCopy() = 0;

  // The copy finished. (The simulator charges the duration at StartCopy
  // and keeps the actor busy; the model checker uses the gap between the
  // two steps as the mid-copy interleaving window.)
  virtual void FinishCopy() = 0;

  // Steps 4-5: atomic get_and_clear of the PTE plus TLB shootdown #2. From
  // here until the remap completes the page sits in a migration window, so
  // no new store can slip between the validity check and the remap. The
  // shootdown also guarantees post-commit stores re-walk and see the new
  // mapping instead of writing the stale (shadow) frame.
  virtual void ShootdownBeforeCheck() = 0;

  // Step 6: the transaction validity test — was the page dirtied since
  // step 1? Must not clear the bit: an aborted transaction leaves the PTE
  // exactly as the writer left it.
  virtual bool ReadDirty() = 0;

  // Step 7 (clean): remap the VPN to the copy. With retain_shadow the old
  // frame is kept as the page's shadow and the new mapping is
  // write-protected (shadow_rw) so the first store faults and discards the
  // shadow; otherwise the old frame is freed (exclusive tiering).
  virtual void CommitRemap(bool retain_shadow) = 0;

  // Step 8 (dirty): abort. Free the copy, leave the original mapping —
  // including its dirty bit — untouched.
  virtual void Abort() = 0;
};

enum class Outcome : uint8_t { kPending, kCommitted, kAborted };

// One transactional page migration, advanced one hardware step at a time.
class Transaction {
 public:
  enum class Step : uint8_t {
    kClearDirty = 0,
    kShootdown1,
    kStartCopy,
    kFinishCopy,
    kShootdown2,
    kCheckDirty,
    kResolve,
    kDone,
  };

  explicit Transaction(bool shadowing) : shadowing_(shadowing) {}

  // Executes the next protocol step against hw and returns the step that
  // ran (kDone when already finished). kCheckDirty samples the dirty bit;
  // kResolve acts on the sample — dirty -> Abort(), clean ->
  // CommitRemap(shadowing). They are distinct steps because in the real
  // protocol nothing but the unmap + both shootdowns keeps a store from
  // slipping between the test and the remap; the model checker exploits
  // exactly this window, so the machine must expose it.
  Step Advance(Hw& hw);

  // kpromote's two engine phases: Begin runs steps 1-3 (through
  // kStartCopy, leaving the copy in flight), Commit runs the rest.
  void Begin(Hw& hw);
  Outcome Commit(Hw& hw);

  Step next() const { return next_; }
  bool done() const { return next_ == Step::kDone; }
  Outcome outcome() const { return outcome_; }

 private:
  Step next_ = Step::kClearDirty;
  Outcome outcome_ = Outcome::kPending;
  bool dirty_at_check_ = false;
  bool shadowing_;
};

// Step name for reproducer lines and diagnostics ("clear_dirty", ...).
const char* StepName(Transaction::Step s);

// --- synchronous migration (migrate.cc's 3-step procedure) --------------

// Hardware surface of the unmap-copy-remap path. The page is unreachable
// from Unmap() until Remap() completes, so no store can race the copy.
class SyncHw {
 public:
  virtual ~SyncHw() = default;
  virtual void Unmap() = 0;      // clear present, isolate from the LRU
  virtual void Shootdown() = 0;  // no stale translation may outlive unmap
  virtual void Copy() = 0;       // copy while unreachable
  virtual void Remap() = 0;      // map the destination, free the source
};

class SyncMigration {
 public:
  enum class Step : uint8_t { kUnmap = 0, kShootdown, kCopy, kRemap, kDone };

  // Executes the next step; the model checker interleaves accesses between
  // calls (they stall, because the page is unmapped).
  Step Advance(SyncHw& hw);

  // The whole procedure at once (the simulator's synchronous path).
  static void Run(SyncHw& hw);

  Step next() const { return next_; }
  bool done() const { return next_ == Step::kDone; }

 private:
  Step next_ = Step::kUnmap;
};

}  // namespace tpm
}  // namespace nomad

#endif  // SRC_NOMAD_TPM_PROTOCOL_H_
