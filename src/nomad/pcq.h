// Promotion candidate queue + migration pending queue (Fig. 4).
//
// TPM interfaces with Linux's memory tracing through two queues:
//  - PCQ holds pages that took one hint fault but are not yet proven hot.
//    On each later fault (and when kpromote idles) the front of the PCQ is
//    scanned; a candidate whose accessed bit was set *again* after being
//    examined once ("primed") is hot and moves on,
//  - the migration pending queue feeds kpromote's transactional
//    migrations.
// Because candidacy needs one fault and hotness is read from A-bits, a
// successful migration costs exactly one minor fault - versus up to 15 for
// TPP's pagevec-gated activation.
#ifndef SRC_NOMAD_PCQ_H_
#define SRC_NOMAD_PCQ_H_

#include <cstddef>
#include <deque>
#include <map>
#include <utility>

#include "src/base/annotations.h"
#include "src/mm/memory_system.h"

namespace nomad {

class AdmissionController;

class NOMAD_SHARD_CONFINED PromotionQueues {
 public:
  struct Config {
    // Large enough to hold every slow-tier page of a scaled working set:
    // a page nominated once stays a candidate without ever faulting again,
    // which is how NOMAD gets by with one fault per migrated page.
    size_t pcq_capacity = 131072;
    size_t scan_per_fault = 8;  // (unused by the default policy; see kpromote)
  };

  explicit PromotionQueues(MemorySystem* ms) : PromotionQueues(ms, Config{}) {}
  PromotionQueues(MemorySystem* ms, const Config& config) : ms_(ms), config_(config) {}

  // Optional migration control plane (not owned): when set, ScanPcq stops
  // feeding the pending queue while the backlog is at its admission cap, so
  // overload shows up as bounded backpressure instead of queue growth.
  void set_admission(AdmissionController* a) { admission_ = a; }

  // Adds a freshly faulted slow-tier page to the PCQ. No-op when the page
  // is already queued, pending or migrating.
  void EnqueueCandidate(Pfn pfn);

  // Examines up to `limit` PCQ entries, moving hot ones to the pending
  // queue. Returns (pages moved, cycles spent).
  std::pair<size_t, Cycles> ScanPcq(size_t limit);

  // Pops the next valid pending page, or kInvalidPfn when drained. The
  // page's in_pending flag stays set; the migrator clears it on completion.
  Pfn PopPending();

  // When the page returned by the last successful PopPending() was deemed
  // hot (entered the pending queue). Feeds hist::kHotToPromoted.
  Cycles popped_hot_since() const { return popped_hot_since_; }

  // Migration transaction id of the last successful PopPending(). Assigned
  // at EnqueueCandidate and carried through every requeue/defer, it links
  // the mig_* span records of one migration's lifecycle.
  uint64_t popped_id() const { return popped_id_; }

  // Requeues an aborted transaction's page for a later retry. `hot_since`
  // carries the original pending-entry time across the retry (kNever: reuse
  // the current time); `mig_id` carries the migration id across it.
  void RequeuePending(Pfn pfn, Cycles hot_since = kNever, uint64_t mig_id = 0);

  // Parks an aborted page until virtual time `ready` (exponential-backoff
  // retries). The page keeps its in_pending flag; PopPending() surfaces it
  // once `ready` passes.
  void DeferPending(Pfn pfn, Cycles ready, Cycles hot_since = kNever, uint64_t mig_id = 0);

  // Earliest ready time among deferred pages, or kNever when none: lets
  // kpromote sleep exactly until a retry becomes due.
  Cycles NextDeferredReady() const {
    return deferred_.empty() ? kNever : deferred_.begin()->first;
  }

  size_t pcq_size() const { return pcq_.size(); }
  size_t pending_size() const { return pending_.size(); }
  size_t deferred_size() const { return deferred_.size(); }
  // High watermarks, for the metrics export.
  size_t pcq_hwm() const { return pcq_hwm_; }
  size_t pending_hwm() const { return pending_hwm_; }
  uint64_t overflow_count() const { return overflow_count_; }
  const Config& config() const { return config_; }

 private:
  // A queued page: identity (pfn + generation) plus the time it entered
  // this stage, which feeds the pcq.residence / promotion.hot_to_promoted
  // histograms. `since` survives requeues so the distribution reflects the
  // page's full wait, not the last retry's.
  struct Entry {
    Pfn pfn = kInvalidPfn;
    uint32_t gen = 0;
    Cycles since = 0;
    // Migration transaction id (1-based; 0 = pre-span entry). Survives
    // requeues and defers so one id spans the page's whole lifecycle.
    uint64_t id = 0;
  };

  bool ValidCandidate(Pfn pfn, uint32_t gen) const;
  void PromoteDueDeferred();

  MemorySystem* ms_;
  Config config_;
  AdmissionController* admission_ = nullptr;
  std::deque<Entry> pcq_;
  std::deque<Entry> pending_;
  // ready time -> entry, drained front-first by PopPending().
  std::multimap<Cycles, Entry> deferred_;
  Cycles popped_hot_since_ = 0;
  uint64_t popped_id_ = 0;
  uint64_t next_mig_id_ = 0;
  size_t pcq_hwm_ = 0;
  size_t pending_hwm_ = 0;
  uint64_t overflow_count_ = 0;
};

}  // namespace nomad

#endif  // SRC_NOMAD_PCQ_H_
