#include "src/nomad/nomad_policy.h"

#include <algorithm>

#include "src/mm/migrate.h"
#include "src/obs/event_registry.h"

namespace nomad {

void NomadPolicy::Install(MemorySystem& ms, Engine& engine) {
  ms_ = &ms;
  shadows_ = std::make_unique<ShadowManager>(&ms);
  queues_ = std::make_unique<PromotionQueues>(&ms, config_.pcq);
  if (config_.enable_admission) {
    admission_ = std::make_unique<AdmissionController>(&ms, config_.admission);
    queues_->set_admission(admission_.get());
  }

  kpromote_ = std::make_unique<KpromoteActor>(&ms, queues_.get(), shadows_.get(),
                                              config_.kpromote);
  kpromote_->set_admission(admission_.get());
  const ActorId kpromote_id = engine.AddActor(kpromote_.get());
  kpromote_->set_actor_id(kpromote_id);

  config_.kswapd_fast.tier = Tier::kFast;
  kswapd_fast_ = std::make_unique<Kswapd>(&ms, config_.kswapd_fast);
  const ActorId kf_id = engine.AddActor(kswapd_fast_.get());
  kswapd_fast_->set_actor_id(kf_id);
  kswapd_fast_->set_reclaim_page_fn([this](Pfn pfn) { return DemotePage(pfn); });
  // Victim preference: a clean shadowed page near the inactive tail demotes
  // by remapping - no copy, no slow-tier allocation - so pick one when
  // available. This is what keeps demotion off the copy path during
  // thrashing (sec. 3.2).
  kswapd_fast_->set_victim_fn([this, &ms]() -> Pfn {
    // First choice: the oldest shadowed page that currently sits on the
    // inactive list and is clean - its demotion is a pure remap.
    const Pfn remappable = shadows_->OldestRemappableMaster(64, [this, &ms](Pfn m) {
      const PageFrame f = ms.pool().frame(m);
      if (!f.mapped() || f.migrating() || f.lru() != LruList::kInactive) {
        return false;
      }
      const Pte* pte = ms_->PteOf(*f.owner(), f.vpn());
      return pte != nullptr && pte->present && pte->pfn == m && !pte->dirty;
    });
    if (remappable != kInvalidPfn) {
      return remappable;
    }
    // Second choice: a remappable page near the inactive tail.
    Pfn pfn = ms.lru(Tier::kFast).InactiveTail();
    for (int i = 0; i < 64 && pfn != kInvalidPfn; i++) {
      const PageFrame f = ms.pool().frame(pfn);
      if (f.shadowed() && f.mapped() && !f.migrating()) {
        const Pte* pte = ms.PteOf(*f.owner(), f.vpn());
        if (pte != nullptr && pte->present && pte->pfn == pfn && !pte->dirty) {
          return pfn;
        }
      }
      pfn = f.lru_prev();
    }
    return kInvalidPfn;  // no remappable victim; default to the tail
  });
  kpromote_->set_kswapd_fast_id(kf_id);

  config_.kswapd_slow.tier = Tier::kSlow;
  kswapd_slow_ = std::make_unique<Kswapd>(&ms, config_.kswapd_slow);
  const ActorId ks_id = engine.AddActor(kswapd_slow_.get());
  kswapd_slow_->set_actor_id(ks_id);
  kswapd_slow_->set_pre_reclaim_fn([this](uint64_t needed, Cycles* cost) {
    return shadows_->ReclaimShadows(needed, cost);
  });

  scanner_ = std::make_unique<HintFaultScanner>(&ms, config_.scanner);
  engine.AddActor(scanner_.get());

  if (config_.enable_governor) {
    governor_ = std::make_unique<ThrashGovernor>(&ms, &gate_, config_.governor);
    engine.AddActor(governor_.get());
    scanner_->set_enabled_fn([this] { return gate_.open; });
    kpromote_->set_enabled_fn([this] { return gate_.open; });
  }

  ms.set_kswapd_waker([this, &engine, &ms](Tier tier) {
    Kswapd* k = tier == Tier::kFast ? kswapd_fast_.get() : kswapd_slow_.get();
    engine.Wake(k->actor_id(), engine.now() + ms.platform().costs.daemon_wakeup);
  });

  // Allocation-failure path: free shadows (targeting 10x the request, here
  // one page at a time) before declaring OOM. Consecutive fruitless
  // attempts escalate the target exponentially, and the loop is bounded:
  // after alloc_fail_max_attempts misses the hook stands down until the
  // shadow index repopulates, instead of walking an empty reclaim FIFO on
  // every failing allocation forever.
  ms.pool().set_alloc_failure_hook([this](Tier tier) {
    if (tier != Tier::kSlow) {
      return false;
    }
    if (alloc_fail_streak_ >= config_.alloc_fail_max_attempts) {
      if (shadows_->count() == 0) {
        return false;  // still nothing to reclaim; fail fast
      }
      alloc_fail_streak_ = 0;  // shadows reappeared; re-arm
    }
    const uint64_t target =
        std::min<uint64_t>(config_.alloc_fail_reclaim_factor << alloc_fail_streak_,
                           config_.alloc_fail_reclaim_cap);
    Cycles cost = 0;
    const uint64_t freed = shadows_->ReclaimShadows(target, &cost);
    if (freed == 0) {
      alloc_fail_streak_++;
      ms_->counters().Add(cnt::kNomadAllocFailReclaimMiss, 1);
      return false;
    }
    if (alloc_fail_streak_ > 0) {
      // An escalated attempt succeeded: record how hard we had to pull.
      ms_->counters().Add(cnt::kNomadAllocFailEscalate, 1);
      ms_->Trace(TraceEvent::kReclaimEscalate, target, freed);
    }
    alloc_fail_streak_ = 0;
    return true;
  });

  ms.set_hint_fault_handler([this](ActorId cpu, AddressSpace& as, Vpn vpn) {
    return OnHintFault(cpu, as, vpn);
  });
  ms.set_write_fault_handler([this](ActorId cpu, AddressSpace& as, Vpn vpn) {
    return OnWriteProtectFault(cpu, as, vpn);
  });
}

Cycles NomadPolicy::OnHintFault(ActorId /*cpu*/, AddressSpace& as, Vpn vpn) {
  MemorySystem& ms = *ms_;
  const KernelCosts& costs = ms.platform().costs;
  ProfScope span(ms.prof(), ProfNode::kHintFault);
  Pte* pte = ms.PteOf(as, vpn);
  Cycles cost = costs.pte_update;
  ms.prof().Charge(cost);
  ms.Trace(TraceEvent::kHintFault, vpn);
  // "Before migration commences, TPM clears the protection bit of the page
  // frame" - the page never hint-faults again while being considered.
  ms.ResolveHintFault(*pte);

  const Pfn pfn = pte->pfn;
  PageFrame f = ms.pool().frame(pfn);
  if (f.tier() == Tier::kFast) {
    return cost;
  }

  ms.lru(Tier::kSlow).MarkAccessed(pfn);
  cost += costs.lru_op;
  ms.prof().Charge(costs.lru_op);
  if (!gate_.open) {
    // The thrash governor closed the promotion gate: serve the page in
    // place and do not nominate it.
    return cost;
  }
  // Nominate and return: the PCQ is examined by kpromote on its own
  // (time-paced) schedule, keeping the fault handler - and hence the
  // application's critical path - minimal. Examination frequency must not
  // scale with the fault rate, or candidate expiry feeds back into more
  // faults.
  queues_->EnqueueCandidate(pfn);
  return cost;
}

Cycles NomadPolicy::OnWriteProtectFault(ActorId /*cpu*/, AddressSpace& as, Vpn vpn) {
  // Shadow page fault (Fig. 5): restore the saved write permission and
  // discard the now-divergent shadow copy.
  MemorySystem& ms = *ms_;
  const KernelCosts& costs = ms.platform().costs;
  Pte* pte = ms.PteOf(as, vpn);
  Cycles cost = costs.pte_update;
  if (pte->shadow_rw) {
    pte->writable = true;
    pte->shadow_rw = false;
  } else {
    // Not shadow-protected (shouldn't normally happen): plain restore.
    pte->writable = true;
  }
  PageFrame f = ms.pool().frame(pte->pfn);
  if (f.shadowed()) {
    shadows_->DiscardShadow(pte->pfn);
    cost += costs.lru_op;
    ms.counters().Add(cnt::kNomadShadowFault, 1);
    ms.Trace(TraceEvent::kShadowFault, vpn);
    // A store invalidated the transactional copy: the page re-dirtied
    // after promotion. This is the ledger's re-dirty-rate numerator.
    ms.provenance().OnRedirty(vpn, ms.Now());
  }
  return cost;
}

MigrateResult NomadPolicy::DemotePage(Pfn pfn) {
  MemorySystem& ms = *ms_;
  const KernelCosts& costs = ms.platform().costs;
  PageFrame f = ms.pool().frame(pfn);
  if (!f.mapped() || f.migrating()) {
    return MigrateResult{};
  }
  // Demotion credits: non-urgent background demotion draws from its own
  // token bucket so a demotion burst is paced like promotions are. Urgent
  // reclaim — the node is below its low watermark — must never block
  // behind a throttle (promotion headroom depends on it), so it bypasses
  // admission entirely.
  if (admission_ != nullptr && !ms.pool().BelowLowWatermark(Tier::kFast) &&
      !admission_->AdmitDemotion()) {
    return MigrateResult{};
  }
  AddressSpace& as = *f.owner();
  const Vpn vpn = f.vpn();
  Pte* pte = ms.PteOf(as, vpn);
  if (pte == nullptr || !pte->present || pte->pfn != pfn) {
    return MigrateResult{};
  }

  if (f.shadowed() && !pte->dirty) {
    // Remap-only demotion: the shadow copy is still identical, so demotion
    // is a PTE update - no copy, no allocation on the slow node.
    MigrateResult r;
    const Pfn shadow = shadows_->DetachShadow(pfn);
    r.cycles += costs.pte_update;
    pte->present = false;
    r.cycles += ms.TlbShootdown(as, vpn);
    pte->pfn = shadow;
    pte->present = true;
    pte->writable = pte->shadow_rw;
    pte->shadow_rw = false;
    pte->accessed = false;
    pte->dirty = false;
    r.cycles += costs.pte_update;

    PageFrame s = ms.pool().frame(shadow);
    s.set_owner(&as);
    s.set_vpn(vpn);
    s.set_referenced(false);
    s.set_active(false);
    // The detached shadow is now a live, mapped slow-tier page the hint
    // scanner must be able to re-arm.
    ms.pool().NoteScanCandidate(shadow);
    ms.lru(Tier::kSlow).AddInactive(shadow);

    ms.lru(Tier::kFast).Remove(pfn);
    ms.llc().InvalidatePage(pfn);
    ms.pool().Free(pfn);
    ms.BeginMigrationWindow(as, vpn, ms.Now() + r.cycles);
    ms.counters().Add(cnt::kNomadDemoteRemap, 1);
    ms.counters().Add(cnt::kNomadDemoteRecent, 1);
    ms.Trace(TraceEvent::kDemote, vpn, r.cycles);
    // Books as kswapd_reclaim self when kswapd drives the demotion; the
    // copy path below attributes through sync_migrate instead.
    ms.prof().Charge(r.cycles);
    ms.hists().Record(hist::kDemotionLatency, r.cycles);
    ms.provenance().OnDemote(vpn, ms.Now());
    r.success = true;
    return r;
  }

  // Demoting a page that arrived by promotion recycles that promotion -
  // the thrash governor's signal. Cold never-promoted victims are warm-up.
  if (f.promoted()) {
    ms.counters().Add(cnt::kNomadDemoteRecent, 1);
  }
  if (f.shadowed()) {
    // Dirty master: the shadow is stale. Free it first (which also makes
    // room on the slow node for the copy), then demote by copying.
    shadows_->DiscardShadow(pfn);
  }
  MigrateResult r = MigratePageSync(ms, as, vpn, Tier::kSlow);
  if (r.success) {
    ms.counters().Add(cnt::kNomadDemoteCopy, 1);
  }
  return r;
}

}  // namespace nomad
