#include "src/nomad/kpromote.h"

#include <algorithm>

#include "src/mm/migrate.h"
#include "src/nomad/admission.h"
#include "src/obs/event_registry.h"

namespace nomad {

// The simulator-side binding of the TPM seam. Every protocol step mutates
// the real PTE/frame/LRU/shadow state through MemorySystem and charges the
// kernel cost the old inline code charged; the step *order* and the
// abort/shadow decisions come from tpm::Transaction, the same machine
// tools/tpm_modelcheck drives exhaustively.
class KpromoteActor::ProtocolHw : public tpm::Hw {
 public:
  ProtocolHw(KpromoteActor& k, Txn& t, Pte& pte) : k_(k), t_(t), pte_(pte) {}

  void ClearDirty() override {
    pte_.dirty = false;
    spent_ += costs().pte_update;
    k_.ms_->prof().Charge(costs().pte_update);
  }

  void ShootdownAfterClear() override {
    const Cycles c = k_.ms_->TlbShootdown(*t_.as, t_.vpn);
    k_.ms_->prof().ChargeLeaf(ProfNode::kTpmShootdown1, c);
    spent_ += c;
  }

  void StartCopy() override {
    const Cycles c = k_.ms_->CopyPageCost(Tier::kSlow, Tier::kFast);
    k_.ms_->prof().ChargeLeaf(ProfNode::kTpmCopy, c);
    spent_ += c;
  }

  // The engine models the copy by keeping kpromote busy for its duration
  // (charged at StartCopy); completion needs no further work here.
  void FinishCopy() override {}

  void ShootdownBeforeCheck() override {
    // The atomic get_and_clear (pte_update) plus shootdown #2.
    spent_ += costs().pte_update;
    k_.ms_->prof().Charge(costs().pte_update);
    const Cycles c = k_.ms_->TlbShootdown(*t_.as, t_.vpn);
    k_.ms_->prof().ChargeLeaf(ProfNode::kTpmShootdown2, c);
    spent_ += c;
  }

  bool ReadDirty() override {
    if constexpr (kFaultInjectionEnabled) {
      // Injected mid-copy store: as if a writer raced the copy and dirtied
      // the page just before the atomic get_and_clear. Only writable pages
      // can be dirtied.
      if (!pte_.dirty && t_.was_writable && k_.ms_->faults() != nullptr &&
          k_.ms_->faults()->ShouldInject(FaultKind::kDirtyWrite)) {
        pte_.dirty = true;
        k_.ms_->counters().Add(cnt::kFaultInjDirtyWrite, 1);
      }
    }
    return pte_.dirty;
  }

  void CommitRemap(bool retain_shadow) override {
    MemorySystem& ms = *k_.ms_;
    PageFrame old_frame = ms.pool().frame(t_.old_pfn);
    PageFrame new_frame = ms.pool().frame(t_.new_pfn);
    new_frame.set_owner(t_.as);
    new_frame.set_vpn(t_.vpn);
    new_frame.set_referenced(true);
    new_frame.set_active(true);
    new_frame.set_promoted(true);

    pte_.pfn = t_.new_pfn;
    pte_.present = true;
    pte_.writable = false;
    pte_.shadow_rw = t_.was_writable;
    pte_.dirty = false;
    pte_.accessed = true;
    spent_ += costs().pte_update;
    ms.prof().ChargeLeaf(ProfNode::kTpmCommitRemap, costs().pte_update);

    // The retry histogram books the aborts this page ate on its way to an
    // eventual commit; the counter resets below so the next transaction on
    // this frame starts clean.
    ms.hists().Record(hist::kTpmRetries, old_frame.tpm_aborts());

    ms.lru(Tier::kSlow).Remove(t_.old_pfn);
    old_frame.set_owner(nullptr);
    old_frame.set_in_pending(false);
    old_frame.set_in_pcq(false);
    old_frame.set_migrating(false);
    old_frame.set_tpm_aborts(0);
    ms.lru(Tier::kFast).AddActive(t_.new_pfn);
    if (retain_shadow) {
      k_.shadows_->AddShadow(t_.new_pfn, t_.old_pfn, t_.id);
    } else {
      // Ablation: exclusive tiering - drop the source copy instead.
      pte_.writable = t_.was_writable;
      pte_.shadow_rw = false;
      ms.pool().Free(t_.old_pfn);
    }
    ms.llc().InvalidatePage(t_.old_pfn);

    // The page is unreachable only for this short remap step.
    ms.BeginMigrationWindow(*t_.as, t_.vpn, ms.Now() + spent_);

    k_.stats_.commits++;
    ms.counters().Add(cnt::kNomadTpmCommit, 1);
    ms.Trace(TraceEvent::kTpmCommit, t_.vpn, spent_);
    // End-to-end transaction latency (matches the kTpmBegin->kTpmCommit
    // trace pairing) and time from "deemed hot" to promoted.
    ms.hists().Record(hist::kMigrationLatency, ms.Now() - t_.begin_time);
    ms.hists().Record(hist::kHotToPromoted, ms.Now() - t_.pending_since);
    ms.provenance().OnPromote(t_.vpn, ms.Now());
    ms.TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kCommit), t_.id);
    k_.txn_.reset();
  }

  void Abort() override {
    // Step 8: the page was written during the copy; the transaction is
    // invalid. Restore the original PTE (nothing else changed) and retry
    // later.
    k_.stats_.aborts++;
    k_.ms_->counters().Add(cnt::kNomadTpmAbort, 1);
    k_.ms_->TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kAbort),
                      t_.id);
    k_.ms_->pool().frame(t_.old_pfn).bump_tpm_aborts();
    k_.NoteAbortForStorm();
    k_.AbortCleanup(/*requeue=*/true);
    spent_ += costs().pte_update;
    k_.ms_->prof().Charge(costs().pte_update);
  }

  Cycles spent() const { return spent_; }

 private:
  const KernelCosts& costs() const { return k_.ms_->platform().costs; }

  KpromoteActor& k_;
  Txn& t_;
  Pte& pte_;
  Cycles spent_ = 0;
};

Cycles KpromoteActor::Step(Engine& engine) {
  if (txn_) {
    return Commit(engine);
  }
  return BeginNext(engine);
}

Cycles KpromoteActor::BeginNext(Engine& engine) {
  const KernelCosts& costs = ms_->platform().costs;
  Cycles spent = 0;
  if (degraded_until_ != 0 && engine.now() >= degraded_until_) {
    // The abort storm cooled off; resume transactional migration.
    degraded_until_ = 0;
    storm_aborts_ = 0;
    ms_->Trace(TraceEvent::kSyncDegrade, 0);
  }
  if (enabled_ && !enabled_()) {
    engine.SleepUntil(engine.now() + config_.idle_poll);
    return 0;
  }
  // Examine a PCQ batch at most once per idle_poll interval. kpromote is
  // the only examiner, so the candidate-expiry window is set by this
  // actor's pace, not by how often the application faults.
  if (engine.now() >= last_scan_ + config_.idle_poll) {
    last_scan_ = engine.now();
    auto [moved, scan_cost] = queues_->ScanPcq(config_.pcq_scan_batch);
    (void)moved;
    ms_->prof().ChargeLeaf(ProfNode::kPcqWait, scan_cost);
    spent += scan_cost;
  }
  Pfn pfn = queues_->PopPending();
  if (pfn == kInvalidPfn) {
    // Sleep until the next poll — or earlier, if a backed-off retry
    // becomes due before that.
    Cycles wake = engine.now() + std::max<Cycles>(spent, 1) + config_.idle_poll;
    wake = std::min(wake, std::max(queues_->NextDeferredReady(), engine.now() + 1));
    engine.SleepUntil(wake);
    return spent;
  }

  PageFrame f = ms_->pool().frame(pfn);
  AddressSpace& as = *f.owner();
  const Vpn vpn = f.vpn();
  const uint64_t mig_id = queues_->popped_id();
  ms_->TraceSpan(TraceEvent::kMigDequeue, vpn, mig_id);
  Pte* pte = ms_->PteOf(as, vpn);
  if (pte == nullptr || !pte->present || pte->pfn != pfn) {
    f.set_in_pending(false);
    ms_->TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kVanish), mig_id);
    return spent + costs.lru_op;
  }

  // Migration control plane: ask for an admission verdict before any
  // bandwidth is committed to this page. Deferred pages park in the PCQ's
  // deferred queue (bounded backpressure); rejected pages lose their
  // candidacy; storm-downgraded pages fall through to the sync path below.
  bool admission_downgrade = false;
  if (admission_ != nullptr) {
    Cycles retry_at = 0;
    const uint64_t backlog = queues_->pending_size() + queues_->deferred_size();
    switch (admission_->AdmitPromotion(pfn, vpn, backlog, &retry_at)) {
      case AdmissionVerdict::kReject:
        f.set_in_pending(false);
        ms_->TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kReject),
                       mig_id);
        return spent + costs.lru_op;
      case AdmissionVerdict::kDefer:
        queues_->DeferPending(pfn, retry_at, queues_->popped_hot_since(), mig_id);
        ms_->TraceSpan(TraceEvent::kMigDefer, retry_at, mig_id);
        return spent + costs.lru_op;
      case AdmissionVerdict::kDowngradeSync:
        admission_downgrade = true;
        break;
      case AdmissionVerdict::kAccept:
        break;
    }
  }

  // Multi-mapped pages would need simultaneous shootdowns per mapping;
  // NOMAD deactivates TPM for them and uses the default synchronous path
  // (sec. 3.3). The ablation switch forces this path for every page, an
  // abort storm forces it temporarily, and the admission controller forces
  // it per page (graceful degradation: the sync path unmaps before copying,
  // so concurrent stores cannot abort it).
  const bool storm_degraded = degraded_until_ != 0;
  if (f.multi_mapped() || !config_.transactional || storm_degraded || admission_downgrade) {
    f.set_in_pending(false);
    MigrateResult r = MigratePageWithRetry(*ms_, as, vpn, Tier::kFast);
    if ((storm_degraded || admission_downgrade) && !f.multi_mapped()) {
      stats_.degraded_migrations++;
      ms_->counters().Add(cnt::kNomadDegradedSyncMigration, 1);
      ms_->TraceSpan(TraceEvent::kMigOutcome,
                     static_cast<uint64_t>(MigOutcome::kDegradedSync), mig_id);
    } else {
      stats_.sync_fallbacks++;
      ms_->counters().Add(cnt::kNomadSyncFallback, 1);
      ms_->TraceSpan(TraceEvent::kMigOutcome,
                     static_cast<uint64_t>(MigOutcome::kSyncFallback), mig_id);
    }
    return spent + r.cycles;
  }

  // Reserve the destination before starting; promotion needs headroom,
  // which kswapd maintains by demoting in the background.
  FramePool& pool = ms_->pool();
  if (pool.FreeFrames(Tier::kFast) <= pool.LowWatermark(Tier::kFast)) {
    stats_.nomem_waits++;
    ms_->counters().Add(cnt::kNomadPromoteWaitNomem, 1);
    if (kswapd_fast_id_ != ~ActorId{0}) {
      engine.Wake(kswapd_fast_id_, engine.now() + costs.daemon_wakeup);
    }
    queues_->RequeuePending(pfn, queues_->popped_hot_since(), mig_id);
    engine.SleepUntil(engine.now() + std::max<Cycles>(spent, 1) + config_.idle_poll);
    return spent;
  }
  const Pfn new_pfn = pool.AllocOn(Tier::kFast);
  if (new_pfn == kInvalidPfn) {
    stats_.nomem_waits++;
    queues_->RequeuePending(pfn, queues_->popped_hot_since(), mig_id);
    engine.SleepUntil(engine.now() + std::max<Cycles>(spent, 1) + config_.idle_poll);
    return spent;
  }

  // --- TPM steps 1-3 (clear dirty, shootdown #1, copy while mapped),
  // driven through the protocol seam. ---
  f.set_migrating(true);
  txn_ = Txn{&as,     vpn,
             pfn,     f.generation(),
             new_pfn, pte->writable || pte->shadow_rw,
             /*begin_time=*/engine.now(), queues_->popped_hot_since(), mig_id};
  ms_->TraceSpan(TraceEvent::kMigAttempt, uint64_t{f.tpm_aborts()} + 1, mig_id);
  machine_.emplace(config_.shadowing);
  ProtocolHw hw(*this, *txn_, *pte);
  {
    ProfScope tpm_span(ms_->prof(), ProfNode::kTpm);
    machine_->Begin(hw);
  }
  spent += hw.spent();
  ms_->Trace(TraceEvent::kTpmBegin, vpn, spent);
  // Returning the copy duration keeps this actor busy for the whole copy;
  // application actors interleave and may dirty the page meanwhile.
  return spent;
}

void KpromoteActor::AbortCleanup(bool requeue) {
  Txn& t = *txn_;
  ms_->Trace(TraceEvent::kTpmAbort, t.vpn);
  ms_->provenance().OnAbort(t.vpn, ms_->Now());
  ms_->pool().Free(t.new_pfn);
  PageFrame f = ms_->pool().frame(t.old_pfn);
  if (f.generation() == t.old_gen) {
    f.set_migrating(false);
    if (!requeue) {
      f.set_in_pending(false);
      ms_->TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kVanish),
                     t.id);
    } else if (f.tpm_aborts() >= config_.max_txn_retries) {
      // Bounded retry: a page that keeps getting written mid-copy is too
      // hot-and-dirty for TPM right now. Drop its candidacy; the PCQ aging
      // machinery can re-nominate it once it cools down.
      stats_.giveups++;
      ms_->counters().Add(cnt::kNomadTpmGiveup, 1);
      ms_->Trace(TraceEvent::kTpmGiveUp, t.vpn, f.tpm_aborts());
      ms_->TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kGiveUp),
                     t.id);
      f.set_tpm_aborts(0);
      f.set_in_pending(false);
    } else {
      // Exponential backoff: each consecutive abort doubles the park time,
      // giving the writer a progressively wider window to go quiet.
      const Cycles delay = config_.abort_backoff_base
                           << (f.tpm_aborts() > 0 ? f.tpm_aborts() - 1 : 0);
      stats_.backoffs++;
      ms_->counters().Add(cnt::kNomadTpmBackoff, 1);
      ms_->Trace(TraceEvent::kTpmBackoff, t.vpn, delay);
      queues_->DeferPending(t.old_pfn, ms_->Now() + delay, t.pending_since, t.id);
      ms_->TraceSpan(TraceEvent::kMigDefer, ms_->Now() + delay, t.id);
    }
  } else {
    // The frame was freed and reused mid-flight: the migration's page is
    // gone, so its span ends here no matter what the caller asked for.
    ms_->TraceSpan(TraceEvent::kMigOutcome, static_cast<uint64_t>(MigOutcome::kVanish), t.id);
  }
  txn_.reset();
}

void KpromoteActor::NoteAbortForStorm() {
  const Cycles now = ms_->Now();
  if (now - storm_window_start_ > config_.storm_window) {
    storm_window_start_ = now;
    storm_aborts_ = 0;
  }
  storm_aborts_++;
  if (storm_aborts_ >= config_.storm_abort_threshold && degraded_until_ == 0) {
    degraded_until_ = now + config_.sync_degrade_duration;
    stats_.sync_degrades++;
    ms_->counters().Add(cnt::kNomadSyncDegrade, 1);
    ms_->Trace(TraceEvent::kSyncDegrade, 1, degraded_until_);
  }
}

Cycles KpromoteActor::Commit(Engine& /*engine*/) {
  const KernelCosts& costs = ms_->platform().costs;
  Txn t = *txn_;

  PageFrame old_frame = ms_->pool().frame(t.old_pfn);
  if (old_frame.generation() != t.old_gen || !old_frame.mapped()) {
    // The page vanished during the copy (unmapped by the workload).
    AbortCleanup(/*requeue=*/false);
    machine_.reset();
    ms_->prof().ChargeLeaf(ProfNode::kTpm, costs.pte_update);
    return costs.pte_update;
  }
  Pte* pte = ms_->PteOf(*t.as, t.vpn);
  if (pte == nullptr || !pte->present || pte->pfn != t.old_pfn) {
    AbortCleanup(/*requeue=*/false);
    machine_.reset();
    ms_->prof().ChargeLeaf(ProfNode::kTpm, costs.pte_update);
    return costs.pte_update;
  }

  // --- TPM steps 4-8, driven through the protocol seam: get_and_clear +
  // shootdown #2, the dirty recheck, then commit-remap (the old frame
  // lives on as the shadow) or abort. ---
  ProtocolHw hw(*this, t, *pte);
  {
    ProfScope tpm_span(ms_->prof(), ProfNode::kTpm);
    (void)machine_->Commit(hw);
  }
  machine_.reset();
  return hw.spent();
}

}  // namespace nomad
