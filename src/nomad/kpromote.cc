#include "src/nomad/kpromote.h"

#include <algorithm>

#include "src/mm/migrate.h"

namespace nomad {

Cycles KpromoteActor::Step(Engine& engine) {
  if (txn_) {
    return Commit(engine);
  }
  return BeginNext(engine);
}

Cycles KpromoteActor::BeginNext(Engine& engine) {
  const KernelCosts& costs = ms_->platform().costs;
  Cycles spent = 0;
  if (degraded_until_ != 0 && engine.now() >= degraded_until_) {
    // The abort storm cooled off; resume transactional migration.
    degraded_until_ = 0;
    storm_aborts_ = 0;
    ms_->Trace(TraceEvent::kSyncDegrade, 0);
  }
  if (enabled_ && !enabled_()) {
    engine.SleepUntil(engine.now() + config_.idle_poll);
    return 0;
  }
  // Examine a PCQ batch at most once per idle_poll interval. kpromote is
  // the only examiner, so the candidate-expiry window is set by this
  // actor's pace, not by how often the application faults.
  if (engine.now() >= last_scan_ + config_.idle_poll) {
    last_scan_ = engine.now();
    auto [moved, scan_cost] = queues_->ScanPcq(config_.pcq_scan_batch);
    (void)moved;
    spent += scan_cost;
  }
  Pfn pfn = queues_->PopPending();
  if (pfn == kInvalidPfn) {
    // Sleep until the next poll — or earlier, if a backed-off retry
    // becomes due before that.
    Cycles wake = engine.now() + std::max<Cycles>(spent, 1) + config_.idle_poll;
    wake = std::min(wake, std::max(queues_->NextDeferredReady(), engine.now() + 1));
    engine.SleepUntil(wake);
    return spent;
  }

  PageFrame& f = ms_->pool().frame(pfn);
  AddressSpace& as = *f.owner;
  const Vpn vpn = f.vpn;
  Pte* pte = ms_->PteOf(as, vpn);
  if (pte == nullptr || !pte->present || pte->pfn != pfn) {
    f.in_pending = false;
    return spent + costs.lru_op;
  }

  // Multi-mapped pages would need simultaneous shootdowns per mapping;
  // NOMAD deactivates TPM for them and uses the default synchronous path
  // (sec. 3.3). The ablation switch forces this path for every page, and
  // an abort storm forces it temporarily (graceful degradation: the sync
  // path unmaps before copying, so concurrent stores cannot abort it).
  const bool storm_degraded = degraded_until_ != 0;
  if (f.multi_mapped() || !config_.transactional || storm_degraded) {
    f.in_pending = false;
    MigrateResult r = MigratePageWithRetry(*ms_, as, vpn, Tier::kFast);
    if (storm_degraded && !f.multi_mapped()) {
      stats_.degraded_migrations++;
      ms_->counters().Add("nomad.degraded_sync_migration", 1);
    } else {
      stats_.sync_fallbacks++;
      ms_->counters().Add("nomad.sync_fallback", 1);
    }
    return spent + r.cycles;
  }

  // Reserve the destination before starting; promotion needs headroom,
  // which kswapd maintains by demoting in the background.
  FramePool& pool = ms_->pool();
  if (pool.FreeFrames(Tier::kFast) <= pool.LowWatermark(Tier::kFast)) {
    stats_.nomem_waits++;
    ms_->counters().Add("nomad.promote_wait_nomem", 1);
    if (kswapd_fast_id_ != ~ActorId{0}) {
      engine.Wake(kswapd_fast_id_, engine.now() + costs.daemon_wakeup);
    }
    queues_->RequeuePending(pfn);
    engine.SleepUntil(engine.now() + std::max<Cycles>(spent, 1) + config_.idle_poll);
    return spent;
  }
  const Pfn new_pfn = pool.AllocOn(Tier::kFast);
  if (new_pfn == kInvalidPfn) {
    stats_.nomem_waits++;
    queues_->RequeuePending(pfn);
    engine.SleepUntil(engine.now() + std::max<Cycles>(spent, 1) + config_.idle_poll);
    return spent;
  }

  // --- TPM steps 1-3: clear dirty, shoot down, copy while mapped. ---
  pte->dirty = false;
  spent += costs.pte_update;
  spent += ms_->TlbShootdown(as, vpn);
  spent += ms_->CopyPageCost(Tier::kSlow, Tier::kFast);

  f.migrating = true;
  txn_ = Txn{&as, vpn, pfn, f.generation, new_pfn, pte->writable || pte->shadow_rw};
  ms_->Trace(TraceEvent::kTpmBegin, vpn, spent);
  // Returning the copy duration keeps this actor busy for the whole copy;
  // application actors interleave and may dirty the page meanwhile.
  return spent;
}

void KpromoteActor::AbortCleanup(bool requeue) {
  Txn& t = *txn_;
  ms_->Trace(TraceEvent::kTpmAbort, t.vpn);
  ms_->pool().Free(t.new_pfn);
  PageFrame& f = ms_->pool().frame(t.old_pfn);
  if (f.generation == t.old_gen) {
    f.migrating = false;
    if (!requeue) {
      f.in_pending = false;
    } else if (f.tpm_aborts >= config_.max_txn_retries) {
      // Bounded retry: a page that keeps getting written mid-copy is too
      // hot-and-dirty for TPM right now. Drop its candidacy; the PCQ aging
      // machinery can re-nominate it once it cools down.
      stats_.giveups++;
      ms_->counters().Add("nomad.tpm_giveup", 1);
      ms_->Trace(TraceEvent::kTpmGiveUp, t.vpn, f.tpm_aborts);
      f.tpm_aborts = 0;
      f.in_pending = false;
    } else {
      // Exponential backoff: each consecutive abort doubles the park time,
      // giving the writer a progressively wider window to go quiet.
      const Cycles delay = config_.abort_backoff_base
                           << (f.tpm_aborts > 0 ? f.tpm_aborts - 1 : 0);
      stats_.backoffs++;
      ms_->counters().Add("nomad.tpm_backoff", 1);
      ms_->Trace(TraceEvent::kTpmBackoff, t.vpn, delay);
      queues_->DeferPending(t.old_pfn, ms_->Now() + delay);
    }
  }
  txn_.reset();
}

void KpromoteActor::NoteAbortForStorm() {
  const Cycles now = ms_->Now();
  if (now - storm_window_start_ > config_.storm_window) {
    storm_window_start_ = now;
    storm_aborts_ = 0;
  }
  storm_aborts_++;
  if (storm_aborts_ >= config_.storm_abort_threshold && degraded_until_ == 0) {
    degraded_until_ = now + config_.sync_degrade_duration;
    stats_.sync_degrades++;
    ms_->counters().Add("nomad.sync_degrade", 1);
    ms_->Trace(TraceEvent::kSyncDegrade, 1, degraded_until_);
  }
}

Cycles KpromoteActor::Commit(Engine& /*engine*/) {
  const KernelCosts& costs = ms_->platform().costs;
  Txn t = *txn_;
  Cycles spent = 0;

  PageFrame& old_frame = ms_->pool().frame(t.old_pfn);
  if (old_frame.generation != t.old_gen || !old_frame.mapped()) {
    // The page vanished during the copy (unmapped by the workload).
    AbortCleanup(/*requeue=*/false);
    return costs.pte_update;
  }
  Pte* pte = ms_->PteOf(*t.as, t.vpn);
  if (pte == nullptr || !pte->present || pte->pfn != t.old_pfn) {
    AbortCleanup(/*requeue=*/false);
    return costs.pte_update;
  }

  // --- TPM steps 4-6: atomic get_and_clear, shootdown #2, dirty check. ---
  spent += costs.pte_update;
  spent += ms_->TlbShootdown(*t.as, t.vpn);

  if constexpr (kFaultInjectionEnabled) {
    // Injected mid-copy store: as if a writer raced the copy and dirtied
    // the page just before the atomic get_and_clear. Only writable pages
    // can be dirtied.
    if (!pte->dirty && t.was_writable && ms_->faults() != nullptr &&
        ms_->faults()->ShouldInject(FaultKind::kDirtyWrite)) {
      pte->dirty = true;
      ms_->counters().Add("fault.dirty_write", 1);
    }
  }

  if (pte->dirty) {
    // Step 8: the page was written during the copy; the transaction is
    // invalid. Restore the original PTE (nothing else changed) and retry
    // later.
    stats_.aborts++;
    ms_->counters().Add("nomad.tpm_abort", 1);
    old_frame.tpm_aborts++;
    NoteAbortForStorm();
    AbortCleanup(/*requeue=*/true);
    return spent + costs.pte_update;
  }

  // --- Step 7: commit. Remap to the fast copy; the old frame becomes the
  // shadow. The master is mapped read-only with the real permission saved
  // in shadow_rw, so the first store takes a shadow page fault.
  PageFrame& new_frame = ms_->pool().frame(t.new_pfn);
  new_frame.owner = t.as;
  new_frame.vpn = t.vpn;
  new_frame.referenced = true;
  new_frame.active = true;
  new_frame.promoted = true;

  pte->pfn = t.new_pfn;
  pte->present = true;
  pte->writable = false;
  pte->shadow_rw = t.was_writable;
  pte->dirty = false;
  pte->accessed = true;
  spent += costs.pte_update;

  ms_->lru(Tier::kSlow).Remove(t.old_pfn);
  old_frame.owner = nullptr;
  old_frame.in_pending = false;
  old_frame.in_pcq = false;
  old_frame.migrating = false;
  old_frame.tpm_aborts = 0;
  ms_->lru(Tier::kFast).AddActive(t.new_pfn);
  if (config_.shadowing) {
    shadows_->AddShadow(t.new_pfn, t.old_pfn);
  } else {
    // Ablation: exclusive tiering - drop the source copy instead.
    pte->writable = t.was_writable;
    pte->shadow_rw = false;
    ms_->pool().Free(t.old_pfn);
  }
  ms_->llc().InvalidatePage(t.old_pfn);

  // The page is unreachable only for this short remap step.
  ms_->BeginMigrationWindow(*t.as, t.vpn, ms_->Now() + spent);

  stats_.commits++;
  ms_->counters().Add("nomad.tpm_commit", 1);
  ms_->Trace(TraceEvent::kTpmCommit, t.vpn, spent);
  txn_.reset();
  return spent;
}

}  // namespace nomad
