#include "src/nomad/admission.h"

#include <algorithm>

#include "src/obs/event_registry.h"

namespace nomad {

const char* AdmissionVerdictName(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::kAccept:
      return "accept";
    case AdmissionVerdict::kDowngradeSync:
      return "downgrade_sync";
    case AdmissionVerdict::kDefer:
      return "defer";
    case AdmissionVerdict::kReject:
      return "reject";
  }
  return "?";
}

void AdmissionController::Refill(Bucket& b, Cycles capacity) {
  const Cycles now = ms_->Now();
  if (!b.primed) {
    // Start full: a freshly installed controller must not stall the first
    // burst of a run, only sustained overload.
    b.available = capacity;
    b.last_refill = now;
    b.primed = true;
    return;
  }
  if (now > b.last_refill) {
    b.available = std::min(capacity, b.available + (now - b.last_refill));
    b.last_refill = now;
  }
}

void AdmissionController::RecordVerdict(AdmissionVerdict v, AdmissionSource src, Vpn vpn) {
  const Cycles now = ms_->Now();
  ms_->Trace(TraceEvent::kAdmissionVerdict, vpn,
             static_cast<uint64_t>(v) | (static_cast<uint64_t>(src) << 8));
  switch (v) {
    case AdmissionVerdict::kAccept:
      if (src == AdmissionSource::kDemotion) {
        stats_.demote_accepts++;
        ms_->counters().Add(cnt::kAdmissionDemoteAccept, 1);
      } else {
        stats_.accepts++;
        ms_->counters().Add(cnt::kAdmissionAccept, 1);
      }
      break;
    case AdmissionVerdict::kDowngradeSync:
      stats_.downgrades++;
      ms_->counters().Add(cnt::kAdmissionDowngradeSync, 1);
      ms_->provenance().OnAdmitDowngrade(vpn, now);
      break;
    case AdmissionVerdict::kDefer:
      if (src == AdmissionSource::kDemotion) {
        stats_.demote_defers++;
        ms_->counters().Add(cnt::kAdmissionDemoteDefer, 1);
      } else {
        stats_.defers++;
        ms_->counters().Add(cnt::kAdmissionDefer, 1);
        ms_->provenance().OnAdmitDefer(vpn, now);
      }
      break;
    case AdmissionVerdict::kReject:
      stats_.rejects++;
      ms_->counters().Add(cnt::kAdmissionReject, 1);
      ms_->provenance().OnAdmitReject(vpn, now);
      break;
  }
}

AdmissionVerdict AdmissionController::AdmitPromotion(Pfn pfn, Vpn vpn, uint64_t backlog,
                                                     Cycles* retry_at) {
  const Cycles now = ms_->Now();

  // Abort-storm detector first: the verdict for a thrashing page must not
  // depend on the bandwidth budget — a downgraded page migrated sync still
  // consumes a token below, it just stops burning copies on aborts.
  auto down = downgraded_.find(pfn);
  if (down != downgraded_.end()) {
    if (now >= down->second) {
      // Decayed: reset the frame's abort history and re-admit to TPM.
      downgraded_.erase(down);
      ms_->pool().frame(pfn).set_tpm_aborts(0);
      stats_.readmits++;
      ms_->counters().Add(cnt::kAdmissionReadmit, 1);
      down = downgraded_.end();
    }
  }
  const bool storming =
      down != downgraded_.end() ||
      ms_->pool().frame(pfn).tpm_aborts() >= config_.downgrade_abort_threshold;

  // Backlog cap: reject before consuming budget, so a rejected page leaves
  // the tokens for pages that will actually migrate.
  if (backlog > config_.max_pending_backlog) {
    RecordVerdict(AdmissionVerdict::kReject, AdmissionSource::kPromotion, vpn);
    return AdmissionVerdict::kReject;
  }

  Refill(promote_bucket_, config_.promote_cycles_per_page * config_.promote_burst_pages);
  if (promote_bucket_.available < config_.promote_cycles_per_page) {
    if (retry_at != nullptr) {
      *retry_at = now + (config_.promote_cycles_per_page - promote_bucket_.available);
    }
    RecordVerdict(AdmissionVerdict::kDefer, AdmissionSource::kPromotion, vpn);
    return AdmissionVerdict::kDefer;
  }
  promote_bucket_.available -= config_.promote_cycles_per_page;

  if (storming) {
    if (down == downgraded_.end()) {
      downgraded_.emplace(pfn, now + config_.downgrade_decay);
    }
    RecordVerdict(AdmissionVerdict::kDowngradeSync, AdmissionSource::kPromotion, vpn);
    return AdmissionVerdict::kDowngradeSync;
  }
  RecordVerdict(AdmissionVerdict::kAccept, AdmissionSource::kPromotion, vpn);
  return AdmissionVerdict::kAccept;
}

bool AdmissionController::AdmitDemotion() {
  Refill(demote_bucket_, config_.demote_cycles_per_page * config_.demote_burst_pages);
  if (demote_bucket_.available < config_.demote_cycles_per_page) {
    RecordVerdict(AdmissionVerdict::kDefer, AdmissionSource::kDemotion, 0);
    return false;
  }
  demote_bucket_.available -= config_.demote_cycles_per_page;
  RecordVerdict(AdmissionVerdict::kAccept, AdmissionSource::kDemotion, 0);
  return true;
}

}  // namespace nomad
