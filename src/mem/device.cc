#include "src/mem/device.h"

#include <algorithm>

namespace nomad {

Cycles DeviceChannel::Access(Cycles now, uint64_t bytes) {
  bytes_total_ += bytes;
  // Serialization at the rate an isolated requester would see.
  Cycles service = static_cast<Cycles>(static_cast<double>(bytes) / bw_single_);
  // Channel occupancy advances at the peak (aggregate) rate: concurrent
  // requesters share peak bandwidth, so each holds the channel only for
  // bytes / bw_peak.
  Cycles occupancy = static_cast<Cycles>(static_cast<double>(bytes) / bw_peak_);
  Cycles start = std::max(now, next_free_);
  Cycles queue_delay = start - now;
  next_free_ = start + std::max<Cycles>(occupancy, 1);
  return queue_delay + latency_ + std::max<Cycles>(service, 1);
}

}  // namespace nomad
