#include "src/mem/device.h"

// DeviceChannel::Access is defined inline in the header (access fast path);
// this translation unit intentionally has no out-of-line definitions.
