// Simulated testbed platforms (Table 1 of the paper).
//
// The paper evaluates four machines: two Intel Sapphire Rapids boxes with an
// Agilex-7 FPGA CXL device (A, B), a Cascade Lake box with Optane persistent
// memory (C), and an AMD Genoa box with Micron CXL modules (D). We reproduce
// each as a PlatformSpec: core clock, LLC size, per-tier latency/bandwidth,
// and what the PEBS-like sampler can observe there (Memtis cannot see CXL
// read misses on A/B because they are uncore events, and has no IBS backend
// on D).
//
// Sizes are scaled: simulating 16 GB of 4 KB pages as metadata is possible
// but slow, so Scale::denom shrinks every paper size (default 64x) while
// keeping the ratios - thrashing behaviour depends on WSS vs fast-tier page
// counts, which scaling preserves.
#ifndef SRC_MEM_PLATFORM_H_
#define SRC_MEM_PLATFORM_H_

#include <cstdint>
#include <string>

#include "src/mem/tier.h"
#include "src/sim/clock.h"

namespace nomad {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kCacheLineSize = 64;

// Conversion between paper sizes (GB on the real testbeds) and simulated
// sizes. denom = 64 turns 16 GB into 256 MB (65,536 pages).
struct Scale {
  uint64_t denom = 64;

  uint64_t Bytes(double paper_gb) const {
    return static_cast<uint64_t>(paper_gb * static_cast<double>(uint64_t{1} << 30)) / denom;
  }
  uint64_t Pages(double paper_gb) const { return Bytes(paper_gb) / kPageSize; }
  double ToPaperGb(uint64_t bytes) const {
    return static_cast<double>(bytes) * static_cast<double>(denom) /
           static_cast<double>(uint64_t{1} << 30);
  }
};

// Fixed software costs of the simulated kernel, in cycles. These are
// calibrated to the rough magnitudes reported for Linux (a minor fault costs
// on the order of a microsecond; an IPI-based TLB shootdown costs a few
// thousand cycles plus per-target work).
struct KernelCosts {
  Cycles page_fault = 2000;         // trap + handler entry/exit of a minor fault
  Cycles page_walk = 50;            // TLB-miss walk (page-walk caches hit)
  Cycles tlb_shootdown_base = 1500; // initiator-side fixed cost of a shootdown
  Cycles tlb_shootdown_per_cpu = 1000;  // initiator-side cost per target CPU
  Cycles ipi_remote_penalty = 700;  // interruption charged to each target CPU
  Cycles llc_hit = 50;              // LLC hit latency
  Cycles pte_update = 100;          // locked PTE read-modify-write
  Cycles lru_op = 60;               // LRU list manipulation per page
  Cycles migrate_fixed = 3000;      // bookkeeping of one migrate_pages() call
  Cycles daemon_wakeup = 2000;      // kernel-thread wakeup/schedule latency
  Cycles kvstore_op = 400;          // CPU work per KV-store operation (YCSB)
};

enum class PlatformId { kA, kB, kC, kD };

// A complete simulated testbed.
struct PlatformSpec {
  PlatformId id = PlatformId::kA;
  std::string name;
  std::string cpu;
  std::string slow_device;
  double ghz = 2.1;                // core clock, for cycle<->second conversion
  int cores = 32;                  // cores available on the enabled socket
  uint64_t llc_bytes = 0;          // scaled LLC capacity
  TierSpec tiers[kNumTiers];       // [0]=fast DRAM, [1]=CXL or PM
  bool pebs_supported = true;      // false on platform D (no IBS backend)
  bool pebs_sees_slow_reads = true;  // false on A/B: CXL LLC misses are uncore
  KernelCosts costs;
  Scale scale;
};

// Builds the spec of one of the paper's testbeds. fast_gb/slow_gb are paper
// sizes (before scaling); the micro-benchmarks use 16/16, the large-RSS
// application runs raise slow_gb on platforms C and D.
PlatformSpec MakePlatform(PlatformId id, const Scale& scale = Scale{}, double fast_gb = 16.0,
                          double slow_gb = 16.0);

const char* PlatformName(PlatformId id);

}  // namespace nomad

#endif  // SRC_MEM_PLATFORM_H_
