#include "src/mem/platform.h"

namespace nomad {

namespace {

// Converts GB/s at the platform clock into bytes per cycle.
double GbpsToBytesPerCycle(double gbps, double ghz) { return gbps / ghz; }

// Fills one tier from Table 1 numbers: latencies in cycles, bandwidths in
// GB/s (single-thread and peak).
TierSpec MakeTier(double ghz, Cycles read_lat, Cycles write_lat, double r_single, double r_peak,
                  double w_single, double w_peak, uint64_t capacity_bytes) {
  TierSpec t;
  t.read_latency = read_lat;
  t.write_latency = write_lat;
  t.read_bw_single = GbpsToBytesPerCycle(r_single, ghz);
  t.read_bw_peak = GbpsToBytesPerCycle(r_peak, ghz);
  t.write_bw_single = GbpsToBytesPerCycle(w_single, ghz);
  t.write_bw_peak = GbpsToBytesPerCycle(w_peak, ghz);
  t.capacity_bytes = capacity_bytes;
  return t;
}

}  // namespace

const char* PlatformName(PlatformId id) {
  switch (id) {
    case PlatformId::kA:
      return "A";
    case PlatformId::kB:
      return "B";
    case PlatformId::kC:
      return "C";
    case PlatformId::kD:
      return "D";
  }
  return "?";
}

PlatformSpec MakePlatform(PlatformId id, const Scale& scale, double fast_gb, double slow_gb) {
  PlatformSpec p;
  p.id = id;
  p.name = PlatformName(id);
  p.scale = scale;
  const uint64_t fast_cap = scale.Bytes(fast_gb);
  const uint64_t slow_cap = scale.Bytes(slow_gb);

  switch (id) {
    case PlatformId::kA:
      // COTS Sapphire Rapids + Agilex-7 FPGA CXL memory.
      p.cpu = "4th Gen Xeon Gold 2.1GHz";
      p.slow_device = "Agilex 7 FPGA CXL, 16 GB DDR4";
      p.ghz = 2.1;
      p.cores = 32;
      p.llc_bytes = scale.Bytes(60.0 / 1024.0);  // 60 MB SPR LLC
      p.tiers[0] = MakeTier(p.ghz, 316, 300, 12.0, 31.45, 20.8, 28.5, fast_cap);
      p.tiers[1] = MakeTier(p.ghz, 854, 820, 4.5, 21.7, 20.7, 21.3, slow_cap);
      p.pebs_supported = true;
      p.pebs_sees_slow_reads = false;  // CXL misses are uncore events on SPR.
      break;
    case PlatformId::kB:
      // Engineering-sample Sapphire Rapids + the same FPGA CXL device.
      p.cpu = "4th Gen Xeon Platinum 3.5GHz (engineering sample)";
      p.slow_device = "Agilex 7 FPGA CXL, 16 GB DDR4";
      p.ghz = 3.5;
      p.cores = 32;
      p.llc_bytes = scale.Bytes(60.0 / 1024.0);
      p.tiers[0] = MakeTier(p.ghz, 226, 215, 12.0, 31.2, 22.3, 23.67, fast_cap);
      p.tiers[1] = MakeTier(p.ghz, 737, 710, 4.45, 22.3, 22.3, 22.4, slow_cap);
      p.pebs_supported = true;
      p.pebs_sees_slow_reads = false;
      break;
    case PlatformId::kC:
      // Cascade Lake + Optane PM 100. PM writes commit to the on-DIMM buffer
      // faster than reads complete (80 ns vs 170 ns per the paper), hence the
      // lower write latency; write bandwidth is the bottleneck instead.
      p.cpu = "2nd Gen Xeon Gold 3.9GHz";
      p.slow_device = "Optane PM 100, 256 GB DDR-T x6";
      p.ghz = 3.9;
      p.cores = 32;
      p.llc_bytes = scale.Bytes(27.5 / 1024.0);  // 27.5 MB CLX LLC
      p.tiers[0] = MakeTier(p.ghz, 249, 240, 12.57, 116.0, 8.67, 85.0, fast_cap);
      p.tiers[1] = MakeTier(p.ghz, 1077, 540, 4.0, 40.1, 8.1, 13.6, slow_cap);
      p.pebs_supported = true;
      p.pebs_sees_slow_reads = true;  // PM misses are core PEBS events.
      break;
    case PlatformId::kD:
      // AMD Genoa + Micron ASIC CXL modules: the smallest fast/slow gap.
      p.cpu = "AMD Genoa 9634 3.7GHz";
      p.slow_device = "Micron CXL memory, 256 GB x4";
      p.ghz = 3.7;
      p.cores = 84;
      p.llc_bytes = scale.Bytes(384.0 / 1024.0);  // 384 MB Genoa L3
      p.tiers[0] = MakeTier(p.ghz, 391, 370, 37.8, 270.0, 89.8, 272.0, fast_cap);
      p.tiers[1] = MakeTier(p.ghz, 712, 680, 20.25, 83.2, 57.7, 84.3, slow_cap);
      p.pebs_supported = false;  // Memtis has no IBS backend (paper sec. 4).
      p.pebs_sees_slow_reads = false;
      break;
  }
  return p;
}

}  // namespace nomad
