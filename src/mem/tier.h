// Memory tier identity and performance characteristics.
//
// The simulator models the two-level hierarchy of the paper (Figure 6): a
// performance tier (local DRAM, NUMA node 0) and a capacity tier (CXL memory
// or persistent memory, a CPUless NUMA node 1). TierSpec carries the
// measured device characteristics of Table 1.
#ifndef SRC_MEM_TIER_H_
#define SRC_MEM_TIER_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace nomad {

// NUMA node id of a tier. Matches the paper's convention: node 0 has CPUs
// and fast DRAM, node 1 is the CPUless capacity node.
enum class Tier : uint8_t {
  kFast = 0,  // performance tier (local DRAM)
  kSlow = 1,  // capacity tier (CXL memory or PM)
};

inline constexpr int kNumTiers = 2;

inline int TierIndex(Tier t) { return static_cast<int>(t); }
inline Tier OtherTier(Tier t) { return t == Tier::kFast ? Tier::kSlow : Tier::kFast; }
inline const char* TierName(Tier t) { return t == Tier::kFast ? "fast" : "slow"; }

// Device characteristics of one tier, in simulated-CPU cycles and
// bytes-per-cycle (Table 1 of the paper).
struct TierSpec {
  Cycles read_latency = 300;        // unloaded read latency per cache line
  Cycles write_latency = 300;       // unloaded write latency per cache line
  double read_bw_single = 0.01;     // single-thread read bandwidth, bytes/cycle
  double read_bw_peak = 0.02;       // peak read bandwidth, bytes/cycle
  double write_bw_single = 0.01;    // single-thread write bandwidth, bytes/cycle
  double write_bw_peak = 0.02;      // peak write bandwidth, bytes/cycle
  uint64_t capacity_bytes = 0;      // scaled capacity managed by the allocator
};

}  // namespace nomad

#endif  // SRC_MEM_TIER_H_
