// Bandwidth-queued memory device model.
//
// Each tier is served by one MemoryDevice that charges every request its
// unloaded latency plus a bandwidth-dependent service time. Contention is
// modelled with a rolling next-free-time per direction: a request arriving
// while the channel is busy queues behind it. Single-thread bandwidth caps
// the service rate seen by an isolated requester; peak bandwidth caps the
// aggregate across concurrent requesters, matching how Table 1 separates
// "Single Thread / Peak performance".
#ifndef SRC_MEM_DEVICE_H_
#define SRC_MEM_DEVICE_H_

#include <cstdint>

#include "src/mem/tier.h"
#include "src/sim/clock.h"

namespace nomad {

// One direction (read or write) of a device channel.
class DeviceChannel {
 public:
  DeviceChannel() = default;
  DeviceChannel(Cycles latency, double bw_single, double bw_peak)
      : latency_(latency), bw_single_(bw_single), bw_peak_(bw_peak) {}

  // Issues a transfer of `bytes` at time `now` and returns its completion
  // latency (queueing + device latency + serialization).
  Cycles Access(Cycles now, uint64_t bytes);

  // Total bytes moved through this channel.
  uint64_t bytes_total() const { return bytes_total_; }

  Cycles latency() const { return latency_; }
  double bw_peak() const { return bw_peak_; }

 private:
  Cycles latency_ = 300;
  double bw_single_ = 0.01;
  double bw_peak_ = 0.02;
  Cycles next_free_ = 0;
  uint64_t bytes_total_ = 0;
};

// A complete tier device: a read channel and a write channel.
class MemoryDevice {
 public:
  MemoryDevice() = default;
  explicit MemoryDevice(const TierSpec& spec)
      : read_(spec.read_latency, spec.read_bw_single, spec.read_bw_peak),
        write_(spec.write_latency, spec.write_bw_single, spec.write_bw_peak) {}

  Cycles Read(Cycles now, uint64_t bytes) { return read_.Access(now, bytes); }
  Cycles Write(Cycles now, uint64_t bytes) { return write_.Access(now, bytes); }

  const DeviceChannel& read_channel() const { return read_; }
  const DeviceChannel& write_channel() const { return write_; }

 private:
  DeviceChannel read_;
  DeviceChannel write_;
};

}  // namespace nomad

#endif  // SRC_MEM_DEVICE_H_
