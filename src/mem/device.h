// Bandwidth-queued memory device model.
//
// Each tier is served by one MemoryDevice that charges every request its
// unloaded latency plus a bandwidth-dependent service time. Contention is
// modelled with a rolling next-free-time per direction: a request arriving
// while the channel is busy queues behind it. Single-thread bandwidth caps
// the service rate seen by an isolated requester; peak bandwidth caps the
// aggregate across concurrent requesters, matching how Table 1 separates
// "Single Thread / Peak performance".
#ifndef SRC_MEM_DEVICE_H_
#define SRC_MEM_DEVICE_H_

#include <cstdint>

#include "src/mem/tier.h"
#include "src/sim/clock.h"

namespace nomad {

// One direction (read or write) of a device channel.
class DeviceChannel {
 public:
  DeviceChannel() { CacheLineCosts(); }
  DeviceChannel(Cycles latency, double bw_single, double bw_peak)
      : latency_(latency), bw_single_(bw_single), bw_peak_(bw_peak) {
    CacheLineCosts();
  }

  // Issues a transfer of `bytes` at time `now` and returns its completion
  // latency (queueing + device latency + serialization). Inline: this sits
  // on the per-access fast path (MemorySystem::AccessBatch). Single-line
  // transfers (by far the most frequent request size) use service and
  // occupancy values precomputed by CacheLineCosts() with the identical
  // expression, so the fast path is division-free and byte-identical.
  Cycles Access(Cycles now, uint64_t bytes) {
    bytes_total_ += bytes;
    Cycles service;
    Cycles occupancy;
    if (bytes == kLineBytes) {
      service = line_service_;
      occupancy = line_occupancy_;
    } else if (bytes == kPageBytes) {
      // Whole-page transfers are the second common size (one read + one
      // write per migration copy); same precomputed-identical-expression
      // treatment as single lines.
      service = page_service_;
      occupancy = page_occupancy_;
    } else {
      // Serialization at the rate an isolated requester would see.
      service = static_cast<Cycles>(static_cast<double>(bytes) / bw_single_);
      // Channel occupancy advances at the peak (aggregate) rate: concurrent
      // requesters share peak bandwidth, so each holds the channel only for
      // bytes / bw_peak.
      occupancy = static_cast<Cycles>(static_cast<double>(bytes) / bw_peak_);
    }
    const Cycles start = now > next_free_ ? now : next_free_;
    const Cycles queue_delay = start - now;
    next_free_ = start + (occupancy > 1 ? occupancy : 1);
    return queue_delay + latency_ + (service > 1 ? service : 1);
  }

  // Total bytes moved through this channel.
  uint64_t bytes_total() const { return bytes_total_; }

  Cycles latency() const { return latency_; }
  double bw_peak() const { return bw_peak_; }

 private:
  static constexpr uint64_t kLineBytes = 64;     // == nomad::kCacheLineSize
  static constexpr uint64_t kPageBytes = 4096;   // == nomad::kPageSize

  void CacheLineCosts() {
    line_service_ = static_cast<Cycles>(static_cast<double>(kLineBytes) / bw_single_);
    line_occupancy_ = static_cast<Cycles>(static_cast<double>(kLineBytes) / bw_peak_);
    page_service_ = static_cast<Cycles>(static_cast<double>(kPageBytes) / bw_single_);
    page_occupancy_ = static_cast<Cycles>(static_cast<double>(kPageBytes) / bw_peak_);
  }

  Cycles latency_ = 300;
  double bw_single_ = 0.01;
  double bw_peak_ = 0.02;
  Cycles line_service_ = 0;
  Cycles line_occupancy_ = 0;
  Cycles page_service_ = 0;
  Cycles page_occupancy_ = 0;
  Cycles next_free_ = 0;
  uint64_t bytes_total_ = 0;
};

// A complete tier device: a read channel and a write channel.
class MemoryDevice {
 public:
  MemoryDevice() = default;
  explicit MemoryDevice(const TierSpec& spec)
      : read_(spec.read_latency, spec.read_bw_single, spec.read_bw_peak),
        write_(spec.write_latency, spec.write_bw_single, spec.write_bw_peak) {}

  Cycles Read(Cycles now, uint64_t bytes) { return read_.Access(now, bytes); }
  Cycles Write(Cycles now, uint64_t bytes) { return write_.Access(now, bytes); }

  const DeviceChannel& read_channel() const { return read_; }
  const DeviceChannel& write_channel() const { return write_; }

 private:
  DeviceChannel read_;
  DeviceChannel write_;
};

}  // namespace nomad

#endif  // SRC_MEM_DEVICE_H_
