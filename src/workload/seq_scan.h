// Sequential scan workload (Table 3 robustness test): sweeps a predefined
// RSS area line by line, wrapping around. Used to measure shadow-page
// footprint and reclamation as RSS approaches total tiered-memory capacity.
#ifndef SRC_WORKLOAD_SEQ_SCAN_H_
#define SRC_WORKLOAD_SEQ_SCAN_H_

#include "src/workload/workload.h"

namespace nomad {

class SeqScanWorkload : public WorkloadActor {
 public:
  struct Config {
    BaseConfig base;
    Vpn region_start = 0;
    uint64_t region_pages = 0;
    double write_fraction = 0.0;
    uint64_t lines_per_page = 4;  // touch a few lines then move on
  };

  SeqScanWorkload(MemorySystem* ms, AddressSpace* as, const Config& config)
      : WorkloadActor(ms, as, config.base), config_(config) {}

  std::string name() const override { return "seq-scan"; }

 protected:
  Cycles RunOp(uint64_t op_index) override {
    const uint64_t page_step = op_index / config_.lines_per_page;
    const Vpn vpn = config_.region_start + page_step % config_.region_pages;
    const uint64_t line = op_index % config_.lines_per_page;
    const bool is_write =
        config_.write_fraction > 0 && rng_.Chance(config_.write_fraction);
    return TouchLine(vpn, line * kCacheLineSize, is_write);
  }

 private:
  Config config_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_SEQ_SCAN_H_
