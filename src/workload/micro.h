// The paper's micro-benchmark (sec. 4.1): Zipfian reads or writes over a
// WSS region that is part of a larger RSS, with configurable initial
// placement (Figures 1, 7, 8, 9 and Table 2).
#ifndef SRC_WORKLOAD_MICRO_H_
#define SRC_WORKLOAD_MICRO_H_

#include <memory>

#include "src/workload/workload.h"
#include "src/workload/zipfian.h"

namespace nomad {

class MicroWorkload : public WorkloadActor {
 public:
  struct Config {
    BaseConfig base;
    Vpn wss_start = 0;          // first VPN of the working set
    uint64_t wss_pages = 0;
    double write_fraction = 0;  // 0 = read benchmark, 1 = write benchmark
    double zipf_theta = 0.99;
  };

  // `zipf` is shared between threads of the same benchmark (same hotness
  // ranking); it must outlive the actor.
  MicroWorkload(MemorySystem* ms, AddressSpace* as, const ScrambledZipfian* zipf,
                const Config& config)
      : WorkloadActor(ms, as, config.base), config_(config), zipf_(zipf) {}

  std::string name() const override { return "micro"; }

 protected:
  Cycles RunOp(uint64_t /*op_index*/) override {
    const Vpn vpn = config_.wss_start + zipf_->Draw(rng_);
    const uint64_t offset = rng_.Below(kPageSize / kCacheLineSize) * kCacheLineSize;
    const bool is_write = config_.write_fraction > 0 && rng_.Chance(config_.write_fraction);
    return TouchLine(vpn, offset, is_write);
  }

 private:
  Config config_;
  const ScrambledZipfian* zipf_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_MICRO_H_
