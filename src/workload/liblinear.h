// Liblinear-style L1-regularized logistic regression (Fig. 13, 16).
//
// The paper runs *multicore* liblinear: worker threads stream disjoint
// slices of a large, cold data matrix while all of them read and update a
// shared weight vector. Two access modes are provided:
//
//  - kParallelSgd (default, matches the paper's setup): one op = one
//    training sample: stream a few lines of the sample's feature row, then
//    gather + update the weights of its non-zero features. Feature ids
//    are power-law skewed (frequent features dominate sparse datasets), so
//    a small set of weight pages is written continuously by every thread.
//    Those pages are exactly the ones worth promoting - and the racing
//    stores are what aborts TPM transactions (Table 4: success:aborted as
//    low as 1:1.9 on this workload).
//
//  - kCoordinateDescent: one op = one weight line: gather the feature
//    column (scattered data reads), then read-modify-write the weight
//    line; the outer iteration sweeps the model sequentially.
#ifndef SRC_WORKLOAD_LIBLINEAR_H_
#define SRC_WORKLOAD_LIBLINEAR_H_

#include <algorithm>

#include "src/workload/workload.h"

namespace nomad {

class LiblinearWorkload : public WorkloadActor {
 public:
  enum class Mode { kParallelSgd, kCoordinateDescent };

  struct Config {
    BaseConfig base;               // total_ops overridden by Layout()
    Mode mode = Mode::kParallelSgd;
    uint64_t samples = 100000;     // data rows
    uint64_t row_lines = 8;        // data-row stride in cache lines
    uint64_t sample_lines = 8;     // lines streamed/gathered per op
    uint64_t model_pages = 256;    // weight-vector footprint
    uint64_t features_per_sample = 6;  // weight gathers+updates per sample
    uint64_t epochs = 2;
    Vpn region_start = 0;          // set by Layout()
    // Thread slicing: this worker processes samples with
    // sample % num_threads == thread_index (kParallelSgd only).
    int thread_index = 0;
    int num_threads = 1;
  };

  // Region layout: [model][data]. Returns one past the last VPN and sets
  // base.total_ops for this worker's share.
  static Vpn Layout(Config* config, Vpn base) {
    config->region_start = base;
    if (config->mode == Mode::kParallelSgd) {
      config->base.total_ops =
          config->samples / config->num_threads * config->epochs;
    } else {
      config->base.total_ops = ModelLines(*config) * config->epochs;
    }
    return base + config->model_pages + DataPages(*config);
  }

  LiblinearWorkload(MemorySystem* ms, AddressSpace* as, const Config& config)
      : WorkloadActor(ms, as, config.base), config_(config) {}

  std::string name() const override { return "liblinear"; }

  static uint64_t ModelLines(const Config& c) {
    return c.model_pages * (kPageSize / kCacheLineSize);
  }
  static uint64_t DataPages(const Config& c) {
    return (c.samples * c.row_lines * kCacheLineSize + kPageSize - 1) / kPageSize;
  }

 protected:
  Cycles RunOp(uint64_t op_index) override {
    return config_.mode == Mode::kParallelSgd ? SgdOp(op_index) : CdOp(op_index);
  }

 private:
  // Power-law feature selection: frequent features first.
  uint64_t SkewedFeature(uint64_t sample, uint64_t i) const {
    const uint64_t num_features = config_.model_pages * kPageSize / 8;
    const double u = static_cast<double>(Hash(sample, i) >> 11) * 0x1.0p-53;
    return static_cast<uint64_t>(u * u * u * static_cast<double>(num_features));
  }

  Cycles SgdOp(uint64_t op_index) {
    const uint64_t per_thread = config_.samples / config_.num_threads;
    const uint64_t sample =
        (op_index % per_thread) * config_.num_threads + config_.thread_index;
    const Vpn model = config_.region_start;
    const Vpn data = config_.region_start + config_.model_pages;

    Cycles c = 0;
    // Stream the sample's feature row (disjoint per thread).
    const uint64_t row_byte = sample * config_.row_lines * kCacheLineSize;
    for (uint64_t l = 0; l < config_.sample_lines; l++) {
      const uint64_t b = row_byte + l * kCacheLineSize;
      c += TouchLine(data + b / kPageSize, b % kPageSize, false);
    }
    // Gather and update the shared weights of the sample's features.
    for (uint64_t i = 0; i < config_.features_per_sample; i++) {
      const uint64_t b = SkewedFeature(sample, i) * 8;
      c += TouchLine(model + b / kPageSize, b % kPageSize, false);
      c += TouchLine(model + b / kPageSize, b % kPageSize, true);
    }
    return c;
  }

  Cycles CdOp(uint64_t op_index) {
    const uint64_t line = op_index % ModelLines(config_);
    const Vpn model = config_.region_start;
    const Vpn data = config_.region_start + config_.model_pages;
    const uint64_t data_lines = DataPages(config_) * (kPageSize / kCacheLineSize);

    Cycles c = 0;
    // Gather this feature's sample column across the data matrix.
    for (uint64_t i = 0; i < config_.sample_lines; i++) {
      const uint64_t b = (Hash(line, i) % data_lines) * kCacheLineSize;
      c += TouchLine(data + b / kPageSize, b % kPageSize, false);
    }
    // Read-modify-write the weight line.
    const uint64_t b = line * kCacheLineSize;
    c += TouchLine(model + b / kPageSize, b % kPageSize, false);
    c += TouchLine(model + b / kPageSize, b % kPageSize, true);
    return c;
  }

  static uint64_t Hash(uint64_t x, uint64_t salt) {
    x += (salt + 1) * 0xD6E8FEB86659FD93ull;
    x ^= x >> 32;
    x *= 0xD6E8FEB86659FD93ull;
    x ^= x >> 32;
    return x;
  }

  Config config_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_LIBLINEAR_H_
