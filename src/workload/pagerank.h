// PageRank over a synthetic uniform-random graph (Fig. 12, 15).
//
// Mirrors the GAPBS setup the paper uses: a uniform graph of V vertices
// with average degree 20. The memory layout is a CSR edge array plus two
// rank arrays; one RunOp processes one vertex:
//  - stream the vertex's edge-list lines (sequential, edge region),
//  - gather neighbor ranks (random reads across the rank region - the
//    tier-sensitive part),
//  - write the vertex's next rank (sequential).
// Neighbor ids are generated on the fly from a hash, so the simulator does
// not materialize the 20V-edge graph; `neighbor_sample` bounds the gathers
// per vertex to keep run times sane while preserving the pattern.
#ifndef SRC_WORKLOAD_PAGERANK_H_
#define SRC_WORKLOAD_PAGERANK_H_

#include "src/workload/workload.h"

namespace nomad {

class PageRankWorkload : public WorkloadActor {
 public:
  struct Config {
    BaseConfig base;               // total_ops is overridden from iterations
    uint64_t vertices = 1 << 20;
    uint64_t degree = 20;
    uint64_t neighbor_sample = 4;  // gathers simulated per vertex
    uint64_t iterations = 2;
    Vpn region_start = 0;          // set by Layout()
  };

  // Region layout: [ranks_cur][ranks_next][edges]. Returns one past the
  // last VPN; total footprint matches the paper's RSS at scale.
  static Vpn Layout(Config* config, Vpn base) {
    config->region_start = base;
    config->base.total_ops = config->vertices * config->iterations;
    return base + RankPages(*config) * 2 + EdgePages(*config);
  }

  PageRankWorkload(MemorySystem* ms, AddressSpace* as, const Config& config)
      : WorkloadActor(ms, as, config.base), config_(config) {}

  std::string name() const override { return "pagerank"; }

  static uint64_t RankPages(const Config& c) {
    return (c.vertices * 8 + kPageSize - 1) / kPageSize;
  }
  static uint64_t EdgePages(const Config& c) {
    return (c.vertices * c.degree * 8 + kPageSize - 1) / kPageSize;
  }

 protected:
  Cycles RunOp(uint64_t op_index) override {
    const uint64_t u = op_index % config_.vertices;
    const uint64_t iter = op_index / config_.vertices;
    const Vpn ranks_cur = config_.region_start + (iter % 2 == 0 ? 0 : RankPages(config_));
    const Vpn ranks_next = config_.region_start + (iter % 2 == 0 ? RankPages(config_) : 0);
    const Vpn edges = config_.region_start + 2 * RankPages(config_);

    Cycles c = 0;
    // Stream this vertex's slice of the CSR edge array.
    const uint64_t edge_byte = u * config_.degree * 8;
    const uint64_t edge_lines = (config_.degree * 8 + kCacheLineSize - 1) / kCacheLineSize;
    for (uint64_t l = 0; l < edge_lines; l++) {
      const uint64_t b = edge_byte + l * kCacheLineSize;
      c += TouchLine(edges + b / kPageSize, b % kPageSize, false);
    }
    // Gather sampled neighbors' ranks (uniform-random graph: any vertex).
    for (uint64_t i = 0; i < config_.neighbor_sample; i++) {
      const uint64_t v = Hash(u * config_.degree + i * (config_.degree / config_.neighbor_sample),
                              iter) %
                         config_.vertices;
      const uint64_t b = v * 8;
      c += TouchLine(ranks_cur + b / kPageSize, b % kPageSize, false);
    }
    // Scatter the new rank.
    const uint64_t b = u * 8;
    c += TouchLine(ranks_next + b / kPageSize, b % kPageSize, true);
    return c;
  }

 private:
  static uint64_t Hash(uint64_t x, uint64_t salt) {
    x += salt * 0x9E3779B97F4A7C15ull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  Config config_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_PAGERANK_H_
