// Base class for application workload actors.
//
// A workload actor is one simulated application thread: each engine step
// executes a small batch of memory accesses (small enough that TPM copy
// windows interleave with stores, which is what makes transaction aborts
// observable). The base class owns the measurement instruments every
// experiment reads: a windowed bandwidth series, a latency histogram, and
// the op counter that ends the run.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "src/mm/memory_system.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace nomad {

class WorkloadActor : public Actor {
 public:
  struct BaseConfig {
    uint64_t total_ops = 1000000;   // accesses (or app-level ops) before done
    unsigned batch = 8;             // accesses executed per engine step
    unsigned mlp = 4;               // memory-level parallelism per access
    Cycles bandwidth_window = 500000;  // windowed-series granularity
    uint64_t seed = 1;
  };

  WorkloadActor(MemorySystem* ms, AddressSpace* as, const BaseConfig& base)
      : ms_(ms),
        as_(as),
        base_(base),
        rng_(base.seed),
        bandwidth_(base.bandwidth_window) {}

  void set_actor_id(ActorId id) { actor_id_ = id; }
  ActorId actor_id() const { return actor_id_; }

  Cycles Step(Engine& engine) final;
  bool done() const final { return ops_done_ >= base_.total_ops; }

  uint64_t ops_done() const { return ops_done_; }
  const WindowedSeries& bandwidth() const { return bandwidth_; }
  const LatencyHistogram& latency() const { return latency_; }
  Cycles finish_time() const { return finish_time_; }

 protected:
  // Executes one application-level operation (commonly one memory access)
  // and returns its simulated latency. `op_index` is the 0-based operation
  // number.
  virtual Cycles RunOp(uint64_t op_index) = 0;

  // One user access charged against this actor, with measurement.
  Cycles TouchLine(Vpn vpn, uint64_t offset, bool is_write) {
    const Cycles c = ms_->Access(actor_id_, *as_, vpn, offset, is_write, base_.mlp);
    bandwidth_.Record(ms_->Now(), kCacheLineSize);
    latency_.Record(c);
    return c;
  }

  MemorySystem* ms_;
  AddressSpace* as_;
  BaseConfig base_;
  Rng rng_;

 private:
  ActorId actor_id_ = 0;
  WindowedSeries bandwidth_;
  LatencyHistogram latency_;
  uint64_t ops_done_ = 0;
  Cycles finish_time_ = 0;
};

inline Cycles WorkloadActor::Step(Engine& engine) {
  Cycles spent = 0;
  for (unsigned i = 0; i < base_.batch && ops_done_ < base_.total_ops; i++) {
    spent += RunOp(ops_done_);
    ops_done_++;
  }
  if (done()) {
    finish_time_ = engine.now() + spent;
  }
  return spent;
}

}  // namespace nomad

#endif  // SRC_WORKLOAD_WORKLOAD_H_
