// Base class for application workload actors.
//
// A workload actor is one simulated application thread: each engine step
// executes a small batch of memory accesses (small enough that TPM copy
// windows interleave with stores, which is what makes transaction aborts
// observable). The base class owns the measurement instruments every
// experiment reads: a windowed bandwidth series, a latency histogram, and
// the op counter that ends the run.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "src/mm/memory_system.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace nomad {

class WorkloadActor : public Actor {
 public:
  struct BaseConfig {
    uint64_t total_ops = 1000000;   // accesses (or app-level ops) before done
    unsigned batch = 8;             // accesses executed per engine step
    unsigned mlp = 4;               // memory-level parallelism per access
    Cycles bandwidth_window = 500000;  // windowed-series granularity
    uint64_t seed = 1;
  };

  WorkloadActor(MemorySystem* ms, AddressSpace* as, const BaseConfig& base)
      : ms_(ms),
        as_(as),
        base_(base),
        rng_(base.seed),
        bandwidth_(base.bandwidth_window) {}

  void set_actor_id(ActorId id) { actor_id_ = id; }
  ActorId actor_id() const { return actor_id_; }

  Cycles Step(Engine& engine) final;
  bool done() const final { return ops_done_ >= base_.total_ops; }

  uint64_t ops_done() const { return ops_done_; }
  const WindowedSeries& bandwidth() const { return bandwidth_; }
  const LatencyHistogram& latency() const { return latency_; }
  Cycles finish_time() const { return finish_time_; }

 protected:
  // Executes one application-level operation (commonly one memory access)
  // and returns its simulated latency. `op_index` is the 0-based operation
  // number.
  virtual Cycles RunOp(uint64_t op_index) = 0;

  // One user access charged against this actor. Accesses are batched: the
  // request is queued here and the whole step's queue executes through the
  // non-virtual MemorySystem::AccessBatch fast path at the end of Step(),
  // which records the same per-access latencies and window-bandwidth bytes
  // as immediate execution did. Contract: RunOp implementations only SUM
  // this return value — address generation must never depend on an access's
  // outcome (that is what makes deferred execution byte-identical; see
  // DESIGN.md "Data layout & batched execution").
  Cycles TouchLine(Vpn vpn, uint64_t offset, bool is_write) {
    pending_.push_back(MemorySystem::BatchAccess{vpn, offset, is_write});
    return 0;
  }

  MemorySystem* ms_;
  AddressSpace* as_;
  BaseConfig base_;
  Rng rng_;

 private:
  ActorId actor_id_ = 0;
  WindowedSeries bandwidth_;
  LatencyHistogram latency_;
  uint64_t ops_done_ = 0;
  Cycles finish_time_ = 0;
  // Step-local access queue and latency scratch; members so capacity is
  // reused across the run's millions of steps.
  std::vector<MemorySystem::BatchAccess> pending_;
  std::vector<Cycles> lat_;
};

inline Cycles WorkloadActor::Step(Engine& engine) {
  Cycles spent = 0;
  // Phase 1: generate. RunOp draws addresses from op_index/rng/local state
  // only; its TouchLine calls queue into pending_.
  for (unsigned i = 0; i < base_.batch && ops_done_ < base_.total_ops; i++) {
    spent += RunOp(ops_done_);
    ops_done_++;
  }
  // Phase 2: execute the queued accesses in submission order. Virtual time
  // is constant within a step, so the coalesced bandwidth record lands in
  // the same window as per-access records did.
  if (!pending_.empty()) {
    lat_.resize(pending_.size());
    spent += ms_->AccessBatch(actor_id_, *as_, pending_.data(), pending_.size(), base_.mlp,
                              lat_.data());
    for (const Cycles c : lat_) {
      latency_.Record(c);
    }
    bandwidth_.Record(ms_->Now(), pending_.size() * kCacheLineSize);
    pending_.clear();
  }
  if (done()) {
    finish_time_ = engine.now() + spent;
  }
  return spent;
}

}  // namespace nomad

#endif  // SRC_WORKLOAD_WORKLOAD_H_
