// YCSB driver over the KvStore (Fig. 11, 14).
//
// Workload A: 50/50 reads and updates, scrambled-Zipfian key popularity
// (YCSB defaults). One RunOp = one database operation; throughput is
// ops / simulated second.
#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include "src/workload/kvstore.h"
#include "src/workload/workload.h"
#include "src/workload/zipfian.h"

namespace nomad {

class YcsbWorkload : public WorkloadActor {
 public:
  struct Config {
    BaseConfig base;
    double read_proportion = 0.5;  // workload A
    double zipf_theta = 0.99;
  };

  YcsbWorkload(MemorySystem* ms, AddressSpace* as, KvStore* store, const Config& config)
      : WorkloadActor(ms, as, config.base),
        config_(config),
        store_(store),
        keys_(store->record_count(), config.zipf_theta, config.base.seed ^ 0x4C5B) {}

  std::string name() const override { return "ycsb"; }

 protected:
  Cycles RunOp(uint64_t /*op_index*/) override {
    const uint64_t key = keys_.Draw(rng_);
    auto touch = [this](Vpn vpn, uint64_t off, bool w) { return TouchLine(vpn, off, w); };
    // Fixed CPU work per database op (parsing, dispatch, reply).
    Cycles c = ms_->platform().costs.kvstore_op;
    if (rng_.Chance(config_.read_proportion)) {
      c += store_->Get(key, touch);
    } else {
      c += store_->Update(key, touch);
    }
    return c;
  }

 private:
  Config config_;
  KvStore* store_;
  ScrambledZipfian keys_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_YCSB_H_
