// Access-trace recording and replay.
//
// TraceRecorder subscribes to a MemorySystem and captures every user access
// as a compact record; TraceReplayWorkload plays a captured (or externally
// produced) trace back as a workload actor. This enables
//  - capturing an application workload once and replaying it bit-identically
//    under different tiering policies or platforms,
//  - importing real access traces into the simulator,
//  - regression-testing policies against frozen workloads.
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/workload/workload.h"

namespace nomad {

// One user access. 16 bytes.
struct TraceRecord {
  Vpn vpn = 0;
  uint32_t offset = 0;  // byte offset within the page
  uint8_t is_write = 0;

  bool operator==(const TraceRecord&) const = default;
};

// Captures accesses flowing through a MemorySystem.
class TraceRecorder {
 public:
  // Subscribes to `ms`. Only accesses by `cpu` are recorded when
  // `cpu_filter` is set (pass ~0 for all CPUs).
  TraceRecorder(MemorySystem* ms, ActorId cpu_filter = ~ActorId{0});

  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Text serialization: one "vpn offset w" triple per line.
  void Save(std::ostream& out) const;
  static std::vector<TraceRecord> Load(std::istream& in);

 private:
  std::vector<TraceRecord> records_;
};

// Replays a trace as a workload actor (one record per op).
class TraceReplayWorkload : public WorkloadActor {
 public:
  struct Config {
    BaseConfig base;  // total_ops is overridden by the trace length
  };

  TraceReplayWorkload(MemorySystem* ms, AddressSpace* as, std::vector<TraceRecord> trace,
                      const Config& config = Config{})
      : WorkloadActor(ms, as, WithLength(config, trace.size())), trace_(std::move(trace)) {}

  std::string name() const override { return "trace-replay"; }

 protected:
  Cycles RunOp(uint64_t op_index) override {
    const TraceRecord& r = trace_[op_index];
    return TouchLine(r.vpn, r.offset, r.is_write != 0);
  }

 private:
  static BaseConfig WithLength(const Config& config, size_t n) {
    BaseConfig base = config.base;
    base.total_ops = n;
    return base;
  }

  std::vector<TraceRecord> trace_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_TRACE_H_
