#include "src/workload/trace.h"

#include <istream>
#include <ostream>

namespace nomad {

TraceRecorder::TraceRecorder(MemorySystem* ms, ActorId cpu_filter) {
  ms->add_access_observer([this, cpu_filter](ActorId cpu, AddressSpace& /*as*/, Vpn vpn,
                                             uint64_t offset, bool is_write,
                                             bool /*llc_miss*/, bool /*tlb_miss*/,
                                             Tier /*tier*/) {
    if (cpu_filter != ~ActorId{0} && cpu != cpu_filter) {
      return;
    }
    records_.push_back(
        TraceRecord{vpn, static_cast<uint32_t>(offset), static_cast<uint8_t>(is_write ? 1 : 0)});
  });
}

void TraceRecorder::Save(std::ostream& out) const {
  for (const TraceRecord& r : records_) {
    out << r.vpn << " " << r.offset << " " << static_cast<int>(r.is_write) << "\n";
  }
}

std::vector<TraceRecord> TraceRecorder::Load(std::istream& in) {
  std::vector<TraceRecord> records;
  TraceRecord r;
  uint64_t vpn = 0, offset = 0;
  int w = 0;
  while (in >> vpn >> offset >> w) {
    r.vpn = vpn;
    r.offset = static_cast<uint32_t>(offset);
    r.is_write = static_cast<uint8_t>(w != 0);
    records.push_back(r);
  }
  return records;
}

}  // namespace nomad
