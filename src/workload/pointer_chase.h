// Block pointer-chasing workload (Fig. 10).
//
// The paper's benchmark crafted to *favor* PEBS tracking: fixed-size 1 GB
// blocks, random cache-line accesses within a block (so every access misses
// the LLC and is PEBS-visible), Zipfian selection across blocks. Dependent
// loads - each access's address comes from the previous one - so MLP is 1
// and the metric is average cache-line access latency.
#ifndef SRC_WORKLOAD_POINTER_CHASE_H_
#define SRC_WORKLOAD_POINTER_CHASE_H_

#include <memory>

#include "src/workload/workload.h"
#include "src/workload/zipfian.h"

namespace nomad {

class PointerChaseWorkload : public WorkloadActor {
 public:
  struct Config {
    BaseConfig base;
    Vpn region_start = 0;
    uint64_t block_pages = 0;  // pages per block (1 GB paper-equivalent)
    uint64_t num_blocks = 0;   // WSS = block_pages * num_blocks
    double zipf_theta = 0.99;
  };

  PointerChaseWorkload(MemorySystem* ms, AddressSpace* as, const Config& config)
      : WorkloadActor(ms, as, config.base),
        config_(config),
        blocks_(config.num_blocks, config.zipf_theta, config.base.seed ^ 0xB10C) {
    base_.mlp = 1;  // dependent loads cannot overlap
  }

  std::string name() const override { return "pointer-chase"; }

 protected:
  Cycles RunOp(uint64_t op_index) override {
    // A run of accesses stays inside one block; hop blocks on a Zipfian
    // draw every kRunLength accesses (the paper "repeatedly accesses"
    // blocks, visiting all lines of a block per visit).
    if (op_index % kRunLength == 0) {
      current_block_ = blocks_.Draw(rng_);
    }
    const Vpn vpn =
        config_.region_start + current_block_ * config_.block_pages +
        rng_.Below(config_.block_pages);
    const uint64_t offset = rng_.Below(kPageSize / kCacheLineSize) * kCacheLineSize;
    return TouchLine(vpn, offset, /*is_write=*/false);
  }

 private:
  static constexpr uint64_t kRunLength = 256;

  Config config_;
  ScrambledZipfian blocks_;
  uint64_t current_block_ = 0;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_POINTER_CHASE_H_
