// Zipfian page selection, YCSB-style.
//
// The paper's micro-benchmark "generates memory accesses to the WSS data
// that mimic real-world memory access patterns with a Zipfian distribution"
// with "the frequently accessed, or hot, data uniformly distributed along
// the WSS" (sec. 4.1). That is a *scrambled* Zipfian: rank r is the r-th
// hottest page, and a random permutation spreads ranks uniformly over the
// page range. Exposing the permutation lets the harness implement the
// Frequency-opt initial placement of Fig. 1 (hottest pages placed in fast
// memory first).
#ifndef SRC_WORKLOAD_ZIPFIAN_H_
#define SRC_WORKLOAD_ZIPFIAN_H_

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/sim/rng.h"

namespace nomad {

// Draws ranks in [0, n) with P(rank) ~ 1/(rank+1)^theta (Gray et al.).
class ZipfianRanks {
 public:
  ZipfianRanks(uint64_t n, double theta = 0.99);

  uint64_t Draw(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double second_rank_cut_;  // 1 + 0.5^theta, hoisted out of Draw (it is
                            // loop-invariant; pow dominated the draw cost)
};

// Scrambled Zipfian over a page (or item) range: hotness ranks are
// permuted uniformly across [0, n).
class ScrambledZipfian {
 public:
  ScrambledZipfian(uint64_t n, double theta, uint64_t seed)
      : ranks_(n, theta), perm_(n) {
    std::iota(perm_.begin(), perm_.end(), uint64_t{0});
    Rng rng(seed);
    for (uint64_t i = n; i > 1; i--) {  // Fisher-Yates
      std::swap(perm_[i - 1], perm_[rng.Below(i)]);
    }
  }

  // Next item index (0-based within the range).
  uint64_t Draw(Rng& rng) const { return perm_[ranks_.Draw(rng)]; }

  // Item holding hotness rank r (0 = hottest). Used for Frequency-opt
  // placement.
  uint64_t ItemOfRank(uint64_t rank) const { return perm_[rank]; }

  uint64_t n() const { return ranks_.n(); }

 private:
  ZipfianRanks ranks_;
  std::vector<uint64_t> perm_;
};

inline ZipfianRanks::ZipfianRanks(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n_; i++) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
  second_rank_cut_ = 1.0 + std::pow(0.5, theta_);
}

inline uint64_t ZipfianRanks::Draw(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < second_rank_cut_) {
    return 1;
  }
  const auto r = static_cast<uint64_t>(static_cast<double>(n_) *
                                       std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return r >= n_ ? n_ - 1 : r;
}

}  // namespace nomad

#endif  // SRC_WORKLOAD_ZIPFIAN_H_
