// A Redis-like in-memory key-value store over the simulated address space.
//
// The store owns a real layout, not just an access pattern:
//  - an open-addressing hash index (8-byte slots, 2x record count) living
//    in its own page range; a lookup probes index lines until it finds the
//    key's slot (deterministic double hashing),
//  - a record heap of fixed-size records (default 1 KB, YCSB's 10x100 B),
//    four records per 4 KB page.
// GET reads the whole record; UPDATE rewrites it in place (Redis-style).
// The driver actor supplies the touch function so every byte moved is
// charged to the right simulated CPU.
#ifndef SRC_WORKLOAD_KVSTORE_H_
#define SRC_WORKLOAD_KVSTORE_H_

#include <cstdint>

#include "src/mem/platform.h"
#include "src/mm/page.h"

namespace nomad {

class KvStore {
 public:
  struct Config {
    uint64_t record_count = 100000;
    uint64_t record_size = 1024;   // bytes; YCSB default 10 fields x 100 B
    Vpn index_start = 0;           // set by Layout()
    Vpn heap_start = 0;            // set by Layout()
  };

  explicit KvStore(const Config& config) : config_(config) {
    slots_ = NextPow2(config_.record_count * 2);
    records_per_page_ = kPageSize / config_.record_size;
  }

  // Computes the page layout starting at `base` and returns one past the
  // last VPN used. Call before any operation.
  Vpn Layout(Vpn base) {
    config_.index_start = base;
    const Vpn index_pages = (slots_ * 8 + kPageSize - 1) / kPageSize;
    config_.heap_start = base + index_pages;
    const Vpn heap_pages =
        (config_.record_count + records_per_page_ - 1) / records_per_page_;
    return config_.heap_start + heap_pages;
  }

  uint64_t record_count() const { return config_.record_count; }
  Vpn index_start() const { return config_.index_start; }
  Vpn heap_start() const { return config_.heap_start; }

  // GET: index probes + full-record read. touch(vpn, offset, is_write)
  // must return the access latency; the sum is returned.
  template <typename TouchFn>
  Cycles Get(uint64_t key, TouchFn&& touch) {
    Cycles c = ProbeIndex(key, touch);
    const auto [vpn, off] = RecordHome(key);
    for (uint64_t line = 0; line < config_.record_size / kCacheLineSize; line++) {
      c += touch(vpn, off + line * kCacheLineSize, false);
    }
    return c;
  }

  // UPDATE: index probes + full-record write.
  template <typename TouchFn>
  Cycles Update(uint64_t key, TouchFn&& touch) {
    Cycles c = ProbeIndex(key, touch);
    const auto [vpn, off] = RecordHome(key);
    for (uint64_t line = 0; line < config_.record_size / kCacheLineSize; line++) {
      c += touch(vpn, off + line * kCacheLineSize, true);
    }
    return c;
  }

 private:
  static uint64_t NextPow2(uint64_t v) {
    uint64_t p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

  // Deterministic probe count: most keys hit on the first probe, a tail
  // needs a second/third (open addressing at load factor 0.5).
  template <typename TouchFn>
  Cycles ProbeIndex(uint64_t key, TouchFn&& touch) {
    Cycles c = 0;
    const uint64_t h = Mix(key);
    const int probes = 1 + static_cast<int>(h % 8 == 0) + static_cast<int>(h % 64 == 0);
    uint64_t slot = h & (slots_ - 1);
    for (int i = 0; i < probes; i++) {
      const Vpn vpn = config_.index_start + (slot * 8) / kPageSize;
      c += touch(vpn, (slot * 8) % kPageSize, false);
      slot = (slot + Mix(slot | 1)) & (slots_ - 1);
    }
    return c;
  }

  std::pair<Vpn, uint64_t> RecordHome(uint64_t key) const {
    const uint64_t rec = key % config_.record_count;
    return {config_.heap_start + rec / records_per_page_,
            (rec % records_per_page_) * config_.record_size};
  }

  Config config_;
  uint64_t slots_;
  uint64_t records_per_page_;
};

}  // namespace nomad

#endif  // SRC_WORKLOAD_KVSTORE_H_
