// Quickstart: build a tiered-memory simulation, run the same Zipfian
// micro-benchmark under four tiering policies, and compare bandwidth.
//
//   $ ./quickstart
//
// The setup is the paper's "medium WSS" scenario scaled 64x down: the
// working set barely fits in fast memory, so policies that migrate cheaply
// (NOMAD) keep most accesses on DRAM while synchronous migration (TPP)
// pays for every promotion on the critical path.
#include <iostream>

#include "src/harness/experiment.h"
#include "src/harness/table.h"
#include "src/mem/platform.h"
#include "src/workload/micro.h"

using namespace nomad;

int main() {
  const Scale scale{64};  // paper GB -> simulated: 16 GB becomes 256 MB
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);

  // Paper sec. 4.1 medium-WSS numbers.
  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(13.5);
  layout.wss_fast_pages = scale.Pages(2.5);
  layout.kernel_pages = scale.Pages(3.5);
  layout.placement = Placement::kFrequencyOpt;

  TablePrinter table({"policy", "transient GB/s", "stable GB/s", "mean latency (cyc)"});

  for (PolicyKind kind : {PolicyKind::kNoMigration, PolicyKind::kTpp,
                          PolicyKind::kMemtisDefault, PolicyKind::kNomad}) {
    if (!PolicySupported(kind, platform)) {
      continue;
    }
    Sim sim(platform, kind, layout.rss_pages);
    ScrambledZipfian zipf(layout.wss_pages, 0.99, /*seed=*/42);
    const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

    MicroWorkload::Config cfg;
    cfg.base.total_ops = 2000000;
    cfg.wss_start = wss_start;
    cfg.wss_pages = layout.wss_pages;
    cfg.write_fraction = 0.0;  // read benchmark
    MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
    sim.AddWorkload(&app);
    sim.Run();

    const PhaseReport r = Analyze(sim);
    table.AddRow({std::string(PolicyKindName(kind)), Fmt(r.transient_gbps),
                  Fmt(r.stable_gbps), Fmt(r.mean_latency_cycles, 0)});
  }

  std::cout << "Zipfian read micro-benchmark, medium WSS (13.5 GB paper-equivalent)\n"
            << "platform A (Sapphire Rapids + FPGA CXL), scale 1/64\n\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: NOMAD's stable bandwidth beats TPP's; no-migration\n"
               "avoids thrashing but never gets hot data into DRAM.\n";
  return 0;
}
