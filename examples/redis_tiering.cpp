// Example: a Redis-like key-value store on tiered memory.
//
// Builds the KV store substrate (hash index + record heap), pre-loads a
// dataset whose RSS exceeds fast memory, pushes it all to the capacity
// tier (the paper's "demote-all" tool), then serves YCSB workload A under
// three tiering policies and reports throughput plus migration behaviour.
//
//   $ ./redis_tiering
#include <iostream>

#include "src/harness/experiment.h"
#include "src/harness/table.h"
#include "src/workload/kvstore.h"
#include "src/workload/ycsb.h"

using namespace nomad;

int main() {
  const Scale scale{64};
  std::cout << "Redis-like store + YCSB-A on tiered memory (platform C, PM capacity tier)\n"
            << "dataset ~13 GB paper-equivalent, demoted to the slow tier before serving\n\n";

  TablePrinter table({"policy", "K ops/s", "promotions", "demotions", "p99 latency (cyc)"});
  for (PolicyKind kind : {PolicyKind::kNoMigration, PolicyKind::kTpp, PolicyKind::kNomad}) {
    const PlatformSpec platform = MakePlatform(PlatformId::kC, scale);

    KvStore::Config kcfg;
    kcfg.record_count = 93750;  // ~6M records at paper scale
    kcfg.record_size = 2048;    // 1 KB value + object overhead
    KvStore store(kcfg);
    const Vpn end = store.Layout(0);

    Sim sim(platform, kind, end + 16);
    sim.ms().ReserveFastFrames(scale.Pages(3.5));
    MapRange(sim.ms(), sim.as(), 0, end, Tier::kFast);
    DemoteAll(sim.ms(), sim.as());

    YcsbWorkload::Config wcfg;
    wcfg.base.total_ops = 50000;
    YcsbWorkload app(&sim.ms(), &sim.as(), &store, wcfg);
    sim.AddWorkload(&app);
    sim.Run();

    const PhaseReport r = Analyze(sim);
    const CounterSet& c = sim.ms().counters();
    table.AddRow({std::string(PolicyKindName(kind)), Fmt(r.ops_per_sec / 1e3, 1),
                  FmtCount(c.Get("migrate.sync_promote") + c.Get("nomad.tpm_commit")),
                  FmtCount(c.Get("migrate.sync_demote") + c.Get("nomad.demote_remap")),
                  Fmt(r.p99_latency_cycles, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nYCSB's key popularity is too flat for migration to pay off fully\n"
               "(the paper's finding) - but NOMAD's asynchronous migration keeps its\n"
               "tail latency far below TPP's, whose promotions block the serving thread.\n";
  return 0;
}
