// Example: the life of a shadowed page, step by step.
//
// Drives one page through NOMAD's full mechanism using the public API and
// prints the page-table / frame state after every stage:
//   1. the page starts on the capacity tier and is hint-fault armed,
//   2. a touch nominates it; a second touch proves it hot,
//   3. kpromote runs the transactional migration; the old frame becomes a
//      shadow and the master is mapped read-only,
//   4. a store takes the shadow page fault: write permission is restored
//      and the shadow is discarded,
//   5. a fresh promotion followed by memory pressure shows the remap-only
//      demotion: the PTE swings back to the shadow copy with no page copy.
//
//   $ ./shadow_inspector
#include <iostream>

#include "src/harness/experiment.h"

using namespace nomad;

namespace {

void Show(MemorySystem& ms, AddressSpace& as, Vpn vpn, const char* stage) {
  const Pte* pte = ms.PteOf(as, vpn);
  std::cout << "--- " << stage << "\n";
  if (pte == nullptr || !pte->present) {
    std::cout << "    vpn " << vpn << ": not mapped\n";
    return;
  }
  const PageFrame f = ms.pool().frame(pte->pfn);
  std::cout << "    vpn " << vpn << " -> pfn " << pte->pfn << " (" << TierName(f.tier())
            << " tier)\n"
            << "    PTE: writable=" << pte->writable << " dirty=" << pte->dirty
            << " accessed=" << pte->accessed << " prot_none=" << pte->prot_none
            << " shadow_rw=" << pte->shadow_rw << "\n"
            << "    frame: shadowed=" << f.shadowed() << " active=" << f.active()
            << " referenced=" << f.referenced() << "\n";
}

}  // namespace

int main() {
  const Scale scale{4096};  // tiny machine: 1024 frames per tier
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  Sim sim(platform, PolicyKind::kNomad, 64);
  MemorySystem& ms = sim.ms();
  AddressSpace& as = sim.as();
  NomadPolicy& nomad = *sim.nomad();

  const ActorId cpu = 40;
  ms.RegisterCpu(cpu);
  const Vpn vpn = 7;

  ms.MapNewPage(as, vpn, Tier::kSlow);
  Show(ms, as, vpn, "1. freshly mapped on the capacity tier");

  // Let the scanner arm the page, then touch it twice with PCQ scans in
  // between so kpromote proves it hot and promotes it.
  sim.engine().Run(200000);
  Show(ms, as, vpn, "2. hint-fault armed by the scanner (prot_none set)");

  ms.Access(cpu, as, vpn, 0, false);  // fault -> nomination
  for (int i = 0; i < 40 && !ms.pool().frame(ms.PteOf(as, vpn)->pfn).shadowed(); i++) {
    ms.Access(cpu, as, vpn, 64, false);  // keep it hot
    sim.engine().Run(sim.engine().now() + 100000);
  }
  Show(ms, as, vpn, "3. transactionally promoted: master read-only, shadow kept");
  std::cout << "    shadow of master = pfn " << nomad.shadows().ShadowOf(ms.PteOf(as, vpn)->pfn)
            << ", shadow count = " << nomad.shadows().count() << "\n";

  ms.Access(cpu, as, vpn, 0, true);  // store -> shadow page fault
  Show(ms, as, vpn, "4. after the first store: shadow fault restored write access");
  std::cout << "    shadow count = " << nomad.shadows().count()
            << " (the stale copy was discarded)\n";

  // Promote again (clean this time), then demote via the shadow remap.
  std::cout << "\n--- 5. remap-only demotion ---\n";
  MovePageSilent(ms, as, vpn, Tier::kSlow);
  sim.engine().Run(sim.engine().now() + 300000);  // re-arm
  ms.Access(cpu, as, vpn, 0, false);
  for (int i = 0; i < 40 && !ms.pool().frame(ms.PteOf(as, vpn)->pfn).shadowed(); i++) {
    ms.Access(cpu, as, vpn, 64, false);
    sim.engine().Run(sim.engine().now() + 100000);
  }
  const Pfn master = ms.PteOf(as, vpn)->pfn;
  const Pfn shadow = nomad.shadows().ShadowOf(master);
  std::cout << "    promoted again: master pfn " << master << ", shadow pfn " << shadow << "\n";
  // Cool the page down and trigger reclaim.
  ms.lru(Tier::kFast).Remove(master);
  ms.lru(Tier::kFast).AddInactive(master);
  ms.PteOf(as, vpn)->accessed = false;
  ms.pool().SetWatermarks(Tier::kFast, ms.pool().TotalFrames(Tier::kFast),
                          ms.pool().TotalFrames(Tier::kFast));
  sim.engine().Run(sim.engine().now() + 2000000);
  Show(ms, as, vpn, "after kswapd demotion");
  std::cout << "    demoted by remap (no copy): "
            << ms.counters().Get("nomad.demote_remap") << " remap demotion(s), PTE now points\n"
            << "    at the old shadow frame " << shadow << " with write permission restored.\n";
  return 0;
}
