// Example: bandwidth timeline under memory thrashing.
//
// Runs the paper's large-WSS scenario (27 GB working set against 16 GB of
// fast memory) under TPP and NOMAD and prints the achieved bandwidth per
// time window, making the difference in *degradation behaviour* visible:
// TPP collapses while it thrashes synchronously; NOMAD degrades gracefully
// because promotion is asynchronous and demotion is mostly a remap.
//
//   $ ./thrashing_timeline
#include <iostream>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/table.h"
#include "src/workload/micro.h"

using namespace nomad;

namespace {

std::vector<double> RunTimeline(PolicyKind kind) {
  const Scale scale{64};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  Sim sim(platform, kind, scale.Pages(27.0) + 16);

  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(27.0);
  layout.wss_fast_pages = scale.Pages(16.0);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 11);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  MicroWorkload::Config cfg;
  cfg.base.total_ops = 1200000;
  cfg.base.bandwidth_window = 20000000;  // ~10 ms windows at 2.1 GHz
  cfg.wss_start = wss_start;
  cfg.wss_pages = layout.wss_pages;
  MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&app);
  sim.Run();

  std::vector<double> series;
  const auto& windows = app.bandwidth().windows();
  for (size_t i = 0; i < windows.size(); i++) {
    series.push_back(app.bandwidth().BandwidthAt(i) * platform.ghz);  // GB/s
  }
  return series;
}

std::string Bar(double gbps, double max) {
  const int width = static_cast<int>(gbps / max * 40);
  return std::string(width, '#');
}

}  // namespace

int main() {
  std::cout << "Bandwidth timeline under severe thrashing (27 GB WSS vs 16 GB DRAM)\n"
            << "platform A, ~10 ms windows\n\n";
  const std::vector<double> tpp = RunTimeline(PolicyKind::kTpp);
  const std::vector<double> nomad = RunTimeline(PolicyKind::kNomad);

  const size_t n = std::min<size_t>(24, std::min(tpp.size(), nomad.size()));
  double max = 0.01;
  for (size_t i = 0; i < n; i++) {
    max = std::max({max, tpp[i], nomad[i]});
  }
  std::cout << "window |  TPP GB/s                                    | NOMAD GB/s\n";
  for (size_t i = 0; i < n; i++) {
    printf("%6zu | %5.2f %-40s | %5.2f %s\n", i, tpp[i], Bar(tpp[i], max).c_str(), nomad[i],
           Bar(nomad[i], max).c_str());
  }
  std::cout << "\nNOMAD sustains usable bandwidth throughout; TPP's synchronous\n"
               "promotions keep the application blocked while it thrashes.\n";
  return 0;
}
