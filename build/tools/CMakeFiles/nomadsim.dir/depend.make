# Empty dependencies file for nomadsim.
# This may be replaced when dependencies are built.
