file(REMOVE_RECURSE
  "CMakeFiles/nomadsim.dir/nomadsim.cc.o"
  "CMakeFiles/nomadsim.dir/nomadsim.cc.o.d"
  "nomadsim"
  "nomadsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomadsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
