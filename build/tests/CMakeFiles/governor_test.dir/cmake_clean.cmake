file(REMOVE_RECURSE
  "CMakeFiles/governor_test.dir/nomad/governor_test.cc.o"
  "CMakeFiles/governor_test.dir/nomad/governor_test.cc.o.d"
  "governor_test"
  "governor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
