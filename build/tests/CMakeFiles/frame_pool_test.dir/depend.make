# Empty dependencies file for frame_pool_test.
# This may be replaced when dependencies are built.
