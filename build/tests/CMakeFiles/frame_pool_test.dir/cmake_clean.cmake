file(REMOVE_RECURSE
  "CMakeFiles/frame_pool_test.dir/mm/frame_pool_test.cc.o"
  "CMakeFiles/frame_pool_test.dir/mm/frame_pool_test.cc.o.d"
  "frame_pool_test"
  "frame_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
