file(REMOVE_RECURSE
  "CMakeFiles/pcq_test.dir/nomad/pcq_test.cc.o"
  "CMakeFiles/pcq_test.dir/nomad/pcq_test.cc.o.d"
  "pcq_test"
  "pcq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
