# Empty dependencies file for pcq_test.
# This may be replaced when dependencies are built.
