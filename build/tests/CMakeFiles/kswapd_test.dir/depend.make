# Empty dependencies file for kswapd_test.
# This may be replaced when dependencies are built.
