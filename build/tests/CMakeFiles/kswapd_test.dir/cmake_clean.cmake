file(REMOVE_RECURSE
  "CMakeFiles/kswapd_test.dir/mm/kswapd_test.cc.o"
  "CMakeFiles/kswapd_test.dir/mm/kswapd_test.cc.o.d"
  "kswapd_test"
  "kswapd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kswapd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
