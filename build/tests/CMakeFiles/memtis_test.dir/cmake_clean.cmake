file(REMOVE_RECURSE
  "CMakeFiles/memtis_test.dir/policy/memtis_test.cc.o"
  "CMakeFiles/memtis_test.dir/policy/memtis_test.cc.o.d"
  "memtis_test"
  "memtis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
