# Empty compiler generated dependencies file for memtis_test.
# This may be replaced when dependencies are built.
