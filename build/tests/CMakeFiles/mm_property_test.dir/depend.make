# Empty dependencies file for mm_property_test.
# This may be replaced when dependencies are built.
