file(REMOVE_RECURSE
  "CMakeFiles/mm_property_test.dir/mm/mm_property_test.cc.o"
  "CMakeFiles/mm_property_test.dir/mm/mm_property_test.cc.o.d"
  "mm_property_test"
  "mm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
