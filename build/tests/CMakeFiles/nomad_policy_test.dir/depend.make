# Empty dependencies file for nomad_policy_test.
# This may be replaced when dependencies are built.
