file(REMOVE_RECURSE
  "CMakeFiles/nomad_policy_test.dir/nomad/nomad_policy_test.cc.o"
  "CMakeFiles/nomad_policy_test.dir/nomad/nomad_policy_test.cc.o.d"
  "nomad_policy_test"
  "nomad_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
