# Empty dependencies file for radix_tree_test.
# This may be replaced when dependencies are built.
