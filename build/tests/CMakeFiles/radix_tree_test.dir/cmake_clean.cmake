file(REMOVE_RECURSE
  "CMakeFiles/radix_tree_test.dir/nomad/radix_tree_test.cc.o"
  "CMakeFiles/radix_tree_test.dir/nomad/radix_tree_test.cc.o.d"
  "radix_tree_test"
  "radix_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
