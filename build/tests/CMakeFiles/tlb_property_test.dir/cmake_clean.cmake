file(REMOVE_RECURSE
  "CMakeFiles/tlb_property_test.dir/mm/tlb_property_test.cc.o"
  "CMakeFiles/tlb_property_test.dir/mm/tlb_property_test.cc.o.d"
  "tlb_property_test"
  "tlb_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
