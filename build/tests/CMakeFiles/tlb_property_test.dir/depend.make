# Empty dependencies file for tlb_property_test.
# This may be replaced when dependencies are built.
