file(REMOVE_RECURSE
  "CMakeFiles/shadow_test.dir/nomad/shadow_test.cc.o"
  "CMakeFiles/shadow_test.dir/nomad/shadow_test.cc.o.d"
  "shadow_test"
  "shadow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
