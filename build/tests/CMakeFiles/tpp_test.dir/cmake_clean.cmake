file(REMOVE_RECURSE
  "CMakeFiles/tpp_test.dir/policy/tpp_test.cc.o"
  "CMakeFiles/tpp_test.dir/policy/tpp_test.cc.o.d"
  "tpp_test"
  "tpp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
