# Empty compiler generated dependencies file for tpp_test.
# This may be replaced when dependencies are built.
