# Empty dependencies file for hint_fault_scanner_test.
# This may be replaced when dependencies are built.
