file(REMOVE_RECURSE
  "CMakeFiles/hint_fault_scanner_test.dir/trace/hint_fault_scanner_test.cc.o"
  "CMakeFiles/hint_fault_scanner_test.dir/trace/hint_fault_scanner_test.cc.o.d"
  "hint_fault_scanner_test"
  "hint_fault_scanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_fault_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
