file(REMOVE_RECURSE
  "CMakeFiles/memory_system_test.dir/mm/memory_system_test.cc.o"
  "CMakeFiles/memory_system_test.dir/mm/memory_system_test.cc.o.d"
  "memory_system_test"
  "memory_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
