# Empty compiler generated dependencies file for nomad_harness.
# This may be replaced when dependencies are built.
