file(REMOVE_RECURSE
  "libnomad_harness.a"
)
