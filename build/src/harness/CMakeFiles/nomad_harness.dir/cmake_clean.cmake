file(REMOVE_RECURSE
  "CMakeFiles/nomad_harness.dir/experiment.cc.o"
  "CMakeFiles/nomad_harness.dir/experiment.cc.o.d"
  "CMakeFiles/nomad_harness.dir/flags.cc.o"
  "CMakeFiles/nomad_harness.dir/flags.cc.o.d"
  "CMakeFiles/nomad_harness.dir/table.cc.o"
  "CMakeFiles/nomad_harness.dir/table.cc.o.d"
  "libnomad_harness.a"
  "libnomad_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
