file(REMOVE_RECURSE
  "libnomad_core.a"
)
