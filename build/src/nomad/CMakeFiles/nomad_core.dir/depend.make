# Empty dependencies file for nomad_core.
# This may be replaced when dependencies are built.
