file(REMOVE_RECURSE
  "CMakeFiles/nomad_core.dir/governor.cc.o"
  "CMakeFiles/nomad_core.dir/governor.cc.o.d"
  "CMakeFiles/nomad_core.dir/kpromote.cc.o"
  "CMakeFiles/nomad_core.dir/kpromote.cc.o.d"
  "CMakeFiles/nomad_core.dir/nomad_policy.cc.o"
  "CMakeFiles/nomad_core.dir/nomad_policy.cc.o.d"
  "CMakeFiles/nomad_core.dir/pcq.cc.o"
  "CMakeFiles/nomad_core.dir/pcq.cc.o.d"
  "CMakeFiles/nomad_core.dir/shadow.cc.o"
  "CMakeFiles/nomad_core.dir/shadow.cc.o.d"
  "libnomad_core.a"
  "libnomad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
