
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nomad/governor.cc" "src/nomad/CMakeFiles/nomad_core.dir/governor.cc.o" "gcc" "src/nomad/CMakeFiles/nomad_core.dir/governor.cc.o.d"
  "/root/repo/src/nomad/kpromote.cc" "src/nomad/CMakeFiles/nomad_core.dir/kpromote.cc.o" "gcc" "src/nomad/CMakeFiles/nomad_core.dir/kpromote.cc.o.d"
  "/root/repo/src/nomad/nomad_policy.cc" "src/nomad/CMakeFiles/nomad_core.dir/nomad_policy.cc.o" "gcc" "src/nomad/CMakeFiles/nomad_core.dir/nomad_policy.cc.o.d"
  "/root/repo/src/nomad/pcq.cc" "src/nomad/CMakeFiles/nomad_core.dir/pcq.cc.o" "gcc" "src/nomad/CMakeFiles/nomad_core.dir/pcq.cc.o.d"
  "/root/repo/src/nomad/shadow.cc" "src/nomad/CMakeFiles/nomad_core.dir/shadow.cc.o" "gcc" "src/nomad/CMakeFiles/nomad_core.dir/shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/nomad_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nomad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/nomad_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nomad_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nomad_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
