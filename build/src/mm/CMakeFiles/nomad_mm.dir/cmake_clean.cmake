file(REMOVE_RECURSE
  "CMakeFiles/nomad_mm.dir/address_space.cc.o"
  "CMakeFiles/nomad_mm.dir/address_space.cc.o.d"
  "CMakeFiles/nomad_mm.dir/cache.cc.o"
  "CMakeFiles/nomad_mm.dir/cache.cc.o.d"
  "CMakeFiles/nomad_mm.dir/frame_pool.cc.o"
  "CMakeFiles/nomad_mm.dir/frame_pool.cc.o.d"
  "CMakeFiles/nomad_mm.dir/kswapd.cc.o"
  "CMakeFiles/nomad_mm.dir/kswapd.cc.o.d"
  "CMakeFiles/nomad_mm.dir/lru.cc.o"
  "CMakeFiles/nomad_mm.dir/lru.cc.o.d"
  "CMakeFiles/nomad_mm.dir/memory_system.cc.o"
  "CMakeFiles/nomad_mm.dir/memory_system.cc.o.d"
  "CMakeFiles/nomad_mm.dir/migrate.cc.o"
  "CMakeFiles/nomad_mm.dir/migrate.cc.o.d"
  "CMakeFiles/nomad_mm.dir/page_table.cc.o"
  "CMakeFiles/nomad_mm.dir/page_table.cc.o.d"
  "CMakeFiles/nomad_mm.dir/tlb.cc.o"
  "CMakeFiles/nomad_mm.dir/tlb.cc.o.d"
  "libnomad_mm.a"
  "libnomad_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
