# Empty dependencies file for nomad_mm.
# This may be replaced when dependencies are built.
