
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/address_space.cc" "src/mm/CMakeFiles/nomad_mm.dir/address_space.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/address_space.cc.o.d"
  "/root/repo/src/mm/cache.cc" "src/mm/CMakeFiles/nomad_mm.dir/cache.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/cache.cc.o.d"
  "/root/repo/src/mm/frame_pool.cc" "src/mm/CMakeFiles/nomad_mm.dir/frame_pool.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/frame_pool.cc.o.d"
  "/root/repo/src/mm/kswapd.cc" "src/mm/CMakeFiles/nomad_mm.dir/kswapd.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/kswapd.cc.o.d"
  "/root/repo/src/mm/lru.cc" "src/mm/CMakeFiles/nomad_mm.dir/lru.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/lru.cc.o.d"
  "/root/repo/src/mm/memory_system.cc" "src/mm/CMakeFiles/nomad_mm.dir/memory_system.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/memory_system.cc.o.d"
  "/root/repo/src/mm/migrate.cc" "src/mm/CMakeFiles/nomad_mm.dir/migrate.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/migrate.cc.o.d"
  "/root/repo/src/mm/page_table.cc" "src/mm/CMakeFiles/nomad_mm.dir/page_table.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/page_table.cc.o.d"
  "/root/repo/src/mm/tlb.cc" "src/mm/CMakeFiles/nomad_mm.dir/tlb.cc.o" "gcc" "src/mm/CMakeFiles/nomad_mm.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nomad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nomad_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
