file(REMOVE_RECURSE
  "libnomad_mm.a"
)
