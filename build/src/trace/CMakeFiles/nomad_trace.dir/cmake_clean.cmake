file(REMOVE_RECURSE
  "CMakeFiles/nomad_trace.dir/hint_fault_scanner.cc.o"
  "CMakeFiles/nomad_trace.dir/hint_fault_scanner.cc.o.d"
  "CMakeFiles/nomad_trace.dir/pebs.cc.o"
  "CMakeFiles/nomad_trace.dir/pebs.cc.o.d"
  "libnomad_trace.a"
  "libnomad_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
