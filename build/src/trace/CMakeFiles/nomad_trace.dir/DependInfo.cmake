
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/hint_fault_scanner.cc" "src/trace/CMakeFiles/nomad_trace.dir/hint_fault_scanner.cc.o" "gcc" "src/trace/CMakeFiles/nomad_trace.dir/hint_fault_scanner.cc.o.d"
  "/root/repo/src/trace/pebs.cc" "src/trace/CMakeFiles/nomad_trace.dir/pebs.cc.o" "gcc" "src/trace/CMakeFiles/nomad_trace.dir/pebs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/nomad_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nomad_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nomad_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
