file(REMOVE_RECURSE
  "libnomad_trace.a"
)
