# Empty dependencies file for nomad_trace.
# This may be replaced when dependencies are built.
