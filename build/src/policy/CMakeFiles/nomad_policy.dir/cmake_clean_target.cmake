file(REMOVE_RECURSE
  "libnomad_policy.a"
)
