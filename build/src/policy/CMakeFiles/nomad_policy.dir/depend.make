# Empty dependencies file for nomad_policy.
# This may be replaced when dependencies are built.
