file(REMOVE_RECURSE
  "CMakeFiles/nomad_policy.dir/memtis.cc.o"
  "CMakeFiles/nomad_policy.dir/memtis.cc.o.d"
  "CMakeFiles/nomad_policy.dir/tpp.cc.o"
  "CMakeFiles/nomad_policy.dir/tpp.cc.o.d"
  "libnomad_policy.a"
  "libnomad_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
