file(REMOVE_RECURSE
  "libnomad_sim.a"
)
