# Empty dependencies file for nomad_sim.
# This may be replaced when dependencies are built.
