file(REMOVE_RECURSE
  "CMakeFiles/nomad_sim.dir/engine.cc.o"
  "CMakeFiles/nomad_sim.dir/engine.cc.o.d"
  "CMakeFiles/nomad_sim.dir/stats.cc.o"
  "CMakeFiles/nomad_sim.dir/stats.cc.o.d"
  "libnomad_sim.a"
  "libnomad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
