file(REMOVE_RECURSE
  "libnomad_mem.a"
)
