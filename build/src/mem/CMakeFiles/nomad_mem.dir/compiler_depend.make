# Empty compiler generated dependencies file for nomad_mem.
# This may be replaced when dependencies are built.
