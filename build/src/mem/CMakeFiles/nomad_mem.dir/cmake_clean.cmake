file(REMOVE_RECURSE
  "CMakeFiles/nomad_mem.dir/device.cc.o"
  "CMakeFiles/nomad_mem.dir/device.cc.o.d"
  "CMakeFiles/nomad_mem.dir/platform.cc.o"
  "CMakeFiles/nomad_mem.dir/platform.cc.o.d"
  "libnomad_mem.a"
  "libnomad_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
