# Empty compiler generated dependencies file for nomad_workload.
# This may be replaced when dependencies are built.
