file(REMOVE_RECURSE
  "CMakeFiles/nomad_workload.dir/trace.cc.o"
  "CMakeFiles/nomad_workload.dir/trace.cc.o.d"
  "libnomad_workload.a"
  "libnomad_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
