# Empty compiler generated dependencies file for thrashing_timeline.
# This may be replaced when dependencies are built.
