file(REMOVE_RECURSE
  "CMakeFiles/thrashing_timeline.dir/thrashing_timeline.cpp.o"
  "CMakeFiles/thrashing_timeline.dir/thrashing_timeline.cpp.o.d"
  "thrashing_timeline"
  "thrashing_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thrashing_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
