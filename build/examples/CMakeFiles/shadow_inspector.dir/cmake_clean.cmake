file(REMOVE_RECURSE
  "CMakeFiles/shadow_inspector.dir/shadow_inspector.cpp.o"
  "CMakeFiles/shadow_inspector.dir/shadow_inspector.cpp.o.d"
  "shadow_inspector"
  "shadow_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
