# Empty compiler generated dependencies file for shadow_inspector.
# This may be replaced when dependencies are built.
