# Empty dependencies file for redis_tiering.
# This may be replaced when dependencies are built.
