file(REMOVE_RECURSE
  "CMakeFiles/redis_tiering.dir/redis_tiering.cpp.o"
  "CMakeFiles/redis_tiering.dir/redis_tiering.cpp.o.d"
  "redis_tiering"
  "redis_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
