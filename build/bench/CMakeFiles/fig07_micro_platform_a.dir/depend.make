# Empty dependencies file for fig07_micro_platform_a.
# This may be replaced when dependencies are built.
