file(REMOVE_RECURSE
  "CMakeFiles/fig07_micro_platform_a.dir/fig07_micro_platform_a.cc.o"
  "CMakeFiles/fig07_micro_platform_a.dir/fig07_micro_platform_a.cc.o.d"
  "fig07_micro_platform_a"
  "fig07_micro_platform_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_micro_platform_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
