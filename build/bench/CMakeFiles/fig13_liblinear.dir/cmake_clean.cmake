file(REMOVE_RECURSE
  "CMakeFiles/fig13_liblinear.dir/fig13_liblinear.cc.o"
  "CMakeFiles/fig13_liblinear.dir/fig13_liblinear.cc.o.d"
  "fig13_liblinear"
  "fig13_liblinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_liblinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
