# Empty compiler generated dependencies file for fig13_liblinear.
# This may be replaced when dependencies are built.
