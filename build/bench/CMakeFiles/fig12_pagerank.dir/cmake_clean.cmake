file(REMOVE_RECURSE
  "CMakeFiles/fig12_pagerank.dir/fig12_pagerank.cc.o"
  "CMakeFiles/fig12_pagerank.dir/fig12_pagerank.cc.o.d"
  "fig12_pagerank"
  "fig12_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
