# Empty dependencies file for fig12_pagerank.
# This may be replaced when dependencies are built.
