# Empty compiler generated dependencies file for fig10_pointer_chase.
# This may be replaced when dependencies are built.
