file(REMOVE_RECURSE
  "CMakeFiles/fig10_pointer_chase.dir/fig10_pointer_chase.cc.o"
  "CMakeFiles/fig10_pointer_chase.dir/fig10_pointer_chase.cc.o.d"
  "fig10_pointer_chase"
  "fig10_pointer_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pointer_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
