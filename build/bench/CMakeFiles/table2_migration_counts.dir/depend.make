# Empty dependencies file for table2_migration_counts.
# This may be replaced when dependencies are built.
