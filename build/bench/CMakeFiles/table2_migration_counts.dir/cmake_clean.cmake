file(REMOVE_RECURSE
  "CMakeFiles/table2_migration_counts.dir/table2_migration_counts.cc.o"
  "CMakeFiles/table2_migration_counts.dir/table2_migration_counts.cc.o.d"
  "table2_migration_counts"
  "table2_migration_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_migration_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
