file(REMOVE_RECURSE
  "libnomad_bench_common.a"
)
