# Empty dependencies file for nomad_bench_common.
# This may be replaced when dependencies are built.
