file(REMOVE_RECURSE
  "CMakeFiles/nomad_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/nomad_bench_common.dir/bench_common.cc.o.d"
  "libnomad_bench_common.a"
  "libnomad_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomad_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
