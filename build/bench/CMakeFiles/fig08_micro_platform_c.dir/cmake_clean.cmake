file(REMOVE_RECURSE
  "CMakeFiles/fig08_micro_platform_c.dir/fig08_micro_platform_c.cc.o"
  "CMakeFiles/fig08_micro_platform_c.dir/fig08_micro_platform_c.cc.o.d"
  "fig08_micro_platform_c"
  "fig08_micro_platform_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_micro_platform_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
