# Empty dependencies file for fig08_micro_platform_c.
# This may be replaced when dependencies are built.
