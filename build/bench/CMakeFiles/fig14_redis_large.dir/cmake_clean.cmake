file(REMOVE_RECURSE
  "CMakeFiles/fig14_redis_large.dir/fig14_redis_large.cc.o"
  "CMakeFiles/fig14_redis_large.dir/fig14_redis_large.cc.o.d"
  "fig14_redis_large"
  "fig14_redis_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_redis_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
