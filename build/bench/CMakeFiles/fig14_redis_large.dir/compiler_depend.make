# Empty compiler generated dependencies file for fig14_redis_large.
# This may be replaced when dependencies are built.
