# Empty compiler generated dependencies file for fig01_tpp_motivation.
# This may be replaced when dependencies are built.
