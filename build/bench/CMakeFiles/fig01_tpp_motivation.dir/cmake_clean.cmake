file(REMOVE_RECURSE
  "CMakeFiles/fig01_tpp_motivation.dir/fig01_tpp_motivation.cc.o"
  "CMakeFiles/fig01_tpp_motivation.dir/fig01_tpp_motivation.cc.o.d"
  "fig01_tpp_motivation"
  "fig01_tpp_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_tpp_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
