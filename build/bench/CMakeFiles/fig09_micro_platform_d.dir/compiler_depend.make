# Empty compiler generated dependencies file for fig09_micro_platform_d.
# This may be replaced when dependencies are built.
