file(REMOVE_RECURSE
  "CMakeFiles/fig09_micro_platform_d.dir/fig09_micro_platform_d.cc.o"
  "CMakeFiles/fig09_micro_platform_d.dir/fig09_micro_platform_d.cc.o.d"
  "fig09_micro_platform_d"
  "fig09_micro_platform_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_micro_platform_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
