file(REMOVE_RECURSE
  "CMakeFiles/ablation_pcq.dir/ablation_pcq.cc.o"
  "CMakeFiles/ablation_pcq.dir/ablation_pcq.cc.o.d"
  "ablation_pcq"
  "ablation_pcq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pcq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
