# Empty dependencies file for ablation_pcq.
# This may be replaced when dependencies are built.
