# Empty compiler generated dependencies file for table3_shadow_reclaim.
# This may be replaced when dependencies are built.
