file(REMOVE_RECURSE
  "CMakeFiles/table3_shadow_reclaim.dir/table3_shadow_reclaim.cc.o"
  "CMakeFiles/table3_shadow_reclaim.dir/table3_shadow_reclaim.cc.o.d"
  "table3_shadow_reclaim"
  "table3_shadow_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_shadow_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
