# Empty dependencies file for fig16_liblinear_large.
# This may be replaced when dependencies are built.
