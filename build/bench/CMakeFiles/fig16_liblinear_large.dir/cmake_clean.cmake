file(REMOVE_RECURSE
  "CMakeFiles/fig16_liblinear_large.dir/fig16_liblinear_large.cc.o"
  "CMakeFiles/fig16_liblinear_large.dir/fig16_liblinear_large.cc.o.d"
  "fig16_liblinear_large"
  "fig16_liblinear_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_liblinear_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
