
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_shadowing.cc" "bench/CMakeFiles/ablation_shadowing.dir/ablation_shadowing.cc.o" "gcc" "bench/CMakeFiles/ablation_shadowing.dir/ablation_shadowing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nomad_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/nomad_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/nomad/CMakeFiles/nomad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/nomad_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nomad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nomad_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/nomad_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nomad_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nomad_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
