# Empty compiler generated dependencies file for fig11_redis_ycsb.
# This may be replaced when dependencies are built.
