file(REMOVE_RECURSE
  "CMakeFiles/fig11_redis_ycsb.dir/fig11_redis_ycsb.cc.o"
  "CMakeFiles/fig11_redis_ycsb.dir/fig11_redis_ycsb.cc.o.d"
  "fig11_redis_ycsb"
  "fig11_redis_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_redis_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
