file(REMOVE_RECURSE
  "CMakeFiles/fig02_tpp_breakdown.dir/fig02_tpp_breakdown.cc.o"
  "CMakeFiles/fig02_tpp_breakdown.dir/fig02_tpp_breakdown.cc.o.d"
  "fig02_tpp_breakdown"
  "fig02_tpp_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tpp_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
