file(REMOVE_RECURSE
  "CMakeFiles/fig15_pagerank_large.dir/fig15_pagerank_large.cc.o"
  "CMakeFiles/fig15_pagerank_large.dir/fig15_pagerank_large.cc.o.d"
  "fig15_pagerank_large"
  "fig15_pagerank_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pagerank_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
