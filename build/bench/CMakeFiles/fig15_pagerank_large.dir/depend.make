# Empty dependencies file for fig15_pagerank_large.
# This may be replaced when dependencies are built.
