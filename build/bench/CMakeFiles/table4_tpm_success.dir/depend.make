# Empty dependencies file for table4_tpm_success.
# This may be replaced when dependencies are built.
