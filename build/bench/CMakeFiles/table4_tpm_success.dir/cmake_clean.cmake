file(REMOVE_RECURSE
  "CMakeFiles/table4_tpm_success.dir/table4_tpm_success.cc.o"
  "CMakeFiles/table4_tpm_success.dir/table4_tpm_success.cc.o.d"
  "table4_tpm_success"
  "table4_tpm_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tpm_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
